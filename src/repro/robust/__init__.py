"""Robustness layer: fault-tolerant execution + invariant guards + chaos.

Three pieces, mirroring the paper's own speculate-detect-recover loop
(Section 5.3) at the infrastructure level:

* :mod:`repro.robust.retry` / :mod:`repro.robust.report` — the
  fault-tolerant run engine's policy (bounded deterministic retry) and
  its per-job :class:`~repro.robust.report.RunReport`;
* :mod:`repro.robust.guards` — :class:`~repro.robust.guards.GuardSet`,
  runtime machine invariants (width-tag soundness, packed-result
  semantics, replay-trap iff carry, RUU accounting);
* :mod:`repro.robust.inject` / :mod:`repro.robust.chaos` /
  :mod:`repro.robust.cli` — deterministic fault injectors and the
  ``repro-chaos`` harness proving every fault is masked or detected.
"""

from repro.robust.guards import GuardSet, InvariantViolation
from repro.robust.report import (
    FAILED,
    OK,
    TIMED_OUT,
    JobOutcome,
    RunReport,
    SuiteFailure,
)
from repro.robust.retry import RetryPolicy

__all__ = [
    "GuardSet",
    "InvariantViolation",
    "JobOutcome",
    "RunReport",
    "SuiteFailure",
    "RetryPolicy",
    "OK",
    "FAILED",
    "TIMED_OUT",
]
