"""``repro-chaos``: the fault-injection harness CLI.

Runs the (workload x injector) chaos matrix and/or the cache-tier
corruption scenario, prints one verdict row per trial, and exits
nonzero if any trial was a silent corruption or a guard false
positive.

    repro-chaos --seed 0 --all-injectors              # full matrix
    repro-chaos -w ijpeg -i tag-flip --seed 7         # one trial
    repro-chaos --cache-chaos bitflip --seed 0        # disk tier
    repro-chaos --service-chaos --seed 0              # service tier
    repro-chaos --list                                # injector catalog
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.exec.cli import (
    add_engine_arguments,
    context_from_args,
    validate_engine_args,
)
from repro.robust.chaos import (
    ALL_INJECTORS,
    ChaosOutcome,
    FALSE_POSITIVE,
    SILENT,
    cache_chaos,
    chaos_suite,
    summarize,
)
from repro.robust.inject import INJECTOR_TYPES
from repro.workloads.registry import all_workloads


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Inject deterministic faults into the simulator and "
                    "the run engine; assert every fault is masked or "
                    "detected by an invariant guard.")
    parser.add_argument("--seed", type=int, default=0,
                        help="suite seed (per-trial seeds derive from it)")
    parser.add_argument("-w", "--workload", action="append", default=None,
                        help="workload(s) to perturb (default: all)")
    parser.add_argument("-i", "--injector", action="append", default=None,
                        choices=sorted(INJECTOR_TYPES),
                        help="injector(s) to run")
    parser.add_argument("--all-injectors", action="store_true",
                        help="run the full injector catalog")
    parser.add_argument("--cache-chaos", choices=["bitflip", "truncate"],
                        help="also corrupt a disk-cache entry and demand "
                             "quarantine + bit-exact recovery (uses "
                             "the shared --cache-dir, or a fresh "
                             "temporary directory; --cache-layout cas "
                             "corrupts inside a CAS shard)")
    parser.add_argument("--service-chaos", action="store_true",
                        help="also run the service-tier scenario "
                             "matrix: worker death mid-sweep, journal "
                             "torn tail / bit flip, CAS shard "
                             "corruption under concurrent reads, "
                             "stalled stream subscribers, malformed "
                             "and oversized requests")
    parser.add_argument("--service-scenario", action="append",
                        default=None, metavar="NAME",
                        help="run only the named service scenario(s) "
                             "(implies --service-chaos; see --list)")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor")
    parser.add_argument("--window", type=int, default=None,
                        help="cap the detailed-simulation window "
                             "(committed instructions)")
    parser.add_argument("--list", action="store_true",
                        help="print the injector catalog and exit")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the unified metrics snapshot "
                             "(chaos verdict and guard counters) as "
                             "JSON after the matrix")
    add_engine_arguments(parser)
    return parser


def _print_catalog() -> None:
    from repro.robust.service_chaos import (
        SCENARIO_EXPECT,
        SERVICE_SCENARIOS,
    )

    print("injector catalog:")
    for name, cls in INJECTOR_TYPES.items():
        headline = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:22s} expect={cls.expect:8s} {headline}")
    print("  cache-bitflip          expect=detected "
          "XOR one bit of a stored cache entry (via --cache-chaos)")
    print("  cache-truncate         expect=detected "
          "cut a stored cache entry in half (via --cache-chaos)")
    print("service scenario catalog (via --service-chaos):")
    for name, fn in SERVICE_SCENARIOS.items():
        headline = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:22s} expect={SCENARIO_EXPECT[name]:8s} "
              f"{headline}")


def _print_outcomes(outcomes: list[ChaosOutcome]) -> None:
    header = (f"{'workload':16s} {'injector':22s} {'verdict':15s} "
              f"{'inj':>3s} {'viol':>4s}  detail")
    print(header)
    print("-" * len(header))
    for o in outcomes:
        detail = o.detail
        if len(detail) > 70:
            detail = detail[:67] + "..."
        print(f"{o.workload:16s} {o.injector:22s} {o.verdict:15s} "
              f"{o.injections:3d} {o.violations:4d}  {detail}")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    validate_engine_args(parser, args)
    if args.list:
        _print_catalog()
        return 0

    service_chaos_on = bool(args.service_chaos or args.service_scenario)
    injectors = args.injector or []
    if args.all_injectors:
        injectors = ALL_INJECTORS
    if not injectors and not args.cache_chaos and not service_chaos_on:
        injectors = ALL_INJECTORS

    workloads = args.workload or [w.name for w in all_workloads()]

    # Per-trial heartbeat on stderr: stdout keeps only the verdict
    # table + summary (what CI greps), so long matrices stay watchable
    # without breaking machine parsing.
    def progress(note: str) -> None:
        print(f"[chaos] {note}", file=sys.stderr, flush=True)

    outcomes: list[ChaosOutcome] = []
    if injectors:
        outcomes.extend(chaos_suite(
            workloads, injectors, seed=args.seed,
            scale=args.scale, window=args.window, progress=progress))

    if args.cache_chaos:
        # The shared engine flags travel into the scenario as one
        # typed context (cache layout, backend, retries, ...).
        ctx = context_from_args(args, obs_dir=None)
        if args.cache_dir is not None:
            cache_dir = Path(args.cache_dir)
            cache_dir.mkdir(parents=True, exist_ok=True)
            outcomes.append(cache_chaos(
                cache_dir, mode=args.cache_chaos, seed=args.seed,
                ctx=ctx))
        else:
            with tempfile.TemporaryDirectory() as tmp:
                outcomes.append(cache_chaos(
                    Path(tmp), mode=args.cache_chaos, seed=args.seed,
                    ctx=ctx))

    if service_chaos_on:
        # Imported lazily: the service tier pulls asyncio + the whole
        # service package, which sim-only chaos runs never need.
        from repro.robust.service_chaos import service_chaos_suite
        try:
            outcomes.extend(service_chaos_suite(
                seed=args.seed, scenarios=args.service_scenario,
                progress=progress))
        except ValueError as err:
            parser.error(str(err))

    _print_outcomes(outcomes)
    counts = summarize(outcomes)
    print(f"\nchaos: {counts[SILENT]} silent corruptions, "
          f"{counts[FALSE_POSITIVE]} false positives, "
          f"{counts['detected']} detected, {counts['masked']} masked, "
          f"{counts['unarmed']} unarmed "
          f"({len(outcomes)} trials, seed {args.seed})")
    if args.metrics_out:
        from repro.perf.metrics import get_registry
        path = get_registry().write(args.metrics_out)
        print(f"[metrics -> {path}]", file=sys.stderr)
    failures = counts[SILENT] + counts[FALSE_POSITIVE]
    if failures:
        print(f"FAIL: {failures} trial(s) violated the "
              f"masked-or-detected contract", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
