"""Service-tier chaos: crash, corrupt, stall, and flood the service.

Each scenario arms one service-level fault — a worker thread dying
mid-sweep, a torn or bit-flipped journal record, a corrupted CAS shard
entry read concurrently, a progress-stream subscriber that never
reads, a malformed or oversized request — and classifies the outcome
with the same verdicts the simulator-tier harness uses
(:mod:`repro.robust.chaos`):

* **detected** — the fault surfaced typed: a ``worker-crash`` job
  failure, a 503 with ``reason="breaker-open"``, a counted torn tail /
  bad record, a quarantined entry, a typed 400/413 — *and* every
  result the service went on to serve was byte-identical to a local
  engine run (the architected truth);
* **masked** — the fault armed but provably changed nothing (a stalled
  subscriber that never slowed the sweep);
* **silent** — the fault was swallowed: wrong bytes served, an untyped
  failure, a crash that wedged the service.  Failure.
* **unarmed** — the scenario could not arm its fault (reported, never
  counted as success).

Every scenario is hermetic: it builds its own service (and, where the
fault lives in the transport, its own real HTTP front end on a private
event loop) inside a temporary directory, and compares served payloads
against :func:`_expected_bytes` — canonical result bytes computed by a
direct :class:`~repro.exec.engine.RunEngine` run with the process memo
disabled, so "byte-identical" is proven against a true re-simulation,
never against a shared in-memory object.
"""

from __future__ import annotations

import asyncio
import json
import socket
import tempfile
import threading
from pathlib import Path

from repro.exec.context import RunContext
from repro.exec.engine import RunEngine, clear_memo
from repro.exec.serialize import result_to_dict
from repro.exec.shards import ShardedResultCache
from repro.perf.metrics import get_registry
from repro.robust.chaos import (
    DETECTED,
    MASKED,
    SILENT,
    UNARMED,
    ChaosOutcome,
    derive_seed,
)
from repro.robust.inject import corrupt_file
from repro.service.api import (
    ERR_WORKER_CRASH,
    FAILED,
    JobSpec,
    NotFound,
    ServiceUnavailable,
    SubmitRequest,
)
from repro.service.http import HttpFrontend
from repro.service.journal import JOURNAL_NAME
from repro.service.service import ExperimentService, canonical_result_bytes

#: Workload every service scenario runs: the fastest in the registry,
#: so the whole suite costs a handful of seconds.
WORKLOAD = "go"

#: Seconds a scenario waits for one sweep to finish before declaring
#: the service wedged (a wedge is a silent failure, not a hang).
_WAIT = 120.0


def _service_ctx(root: Path) -> RunContext:
    """The scenario services run the CAS layout.  Callers pair this
    with :func:`~repro.exec.engine.clear_memo` — the process-wide
    result memo would otherwise serve jobs from memory and bypass the
    very disk/journal tiers the scenarios corrupt."""
    return RunContext(cache_dir=root / "cas", cache_layout="cas",
                      obs_dir=None, jobs=1, memo=False)


def _expected_bytes(workload: str = WORKLOAD) -> bytes:
    """Canonical result bytes from a direct local engine run — the
    truth every scenario's served payload is compared against."""
    job = JobSpec(workload=workload).resolve()
    clear_memo()
    ctx = RunContext(cache_dir=None, obs_dir=None, jobs=1, memo=False)
    result = RunEngine(ctx).run_jobs([job])[job.key]
    return canonical_result_bytes(result_to_dict(result))


def _go_sweep(**kwargs) -> SubmitRequest:
    return SubmitRequest(jobs=(JobSpec(workload=WORKLOAD),), **kwargs)


def _classify(name: str, seed: int, verdict: str, *, injections: int = 1,
              violations: int = 0, detail: str = "") -> ChaosOutcome:
    get_registry().counter(f"chaos.{verdict}").inc()
    return ChaosOutcome(WORKLOAD, name, seed, verdict,
                        injections=injections, violations=violations,
                        detail=detail)


# ------------------------------------------------------- worker faults


class _CrashingService(ExperimentService):
    """Worker thread raises inside the dispatch path for the first
    ``crashes`` jobs it picks up (then behaves)."""

    def __init__(self, *args, crashes: int = 1, **kwargs) -> None:
        self._crashes_left = crashes
        super().__init__(*args, **kwargs)

    def _before_execute(self, entry) -> None:
        if self._crashes_left > 0:
            self._crashes_left -= 1
            raise RuntimeError("chaos: worker thread killed mid-sweep")


def worker_death(root: Path, seed: int, expected: bytes) -> ChaosOutcome:
    """A worker thread dies mid-sweep: the job must fail *typed*
    (``worker-crash``), the thread must survive to serve the retry,
    and the retry must land byte-identical."""
    name = "svc-worker-death"
    clear_memo()
    service = _CrashingService(_service_ctx(root), workers=1,
                               breaker_threshold=100,
                               journal_dir=None, crashes=1).start()
    try:
        first = service.wait(service.submit(_go_sweep()).sweep_id,
                             timeout=_WAIT)
        job = first.statuses[0]
        if job.state != FAILED or job.error_code != ERR_WORKER_CRASH:
            return _classify(
                name, seed, SILENT,
                detail=f"crash not typed: state={job.state} "
                       f"error_code={job.error_code}")
        retry = service.wait(service.submit(_go_sweep()).sweep_id,
                             timeout=_WAIT)
        if not retry.ok:
            return _classify(name, seed, SILENT,
                             detail="retry after worker crash failed: "
                                    f"{retry.statuses[0].error}")
        payload = service.result_bytes(retry.statuses[0].fingerprint)
        if payload != expected:
            return _classify(name, seed, SILENT,
                             detail="retry served bytes differing from "
                                    "the local engine run")
        return _classify(name, seed, DETECTED, violations=1,
                         detail="job failed typed worker-crash; retry "
                                "on a surviving worker byte-identical")
    finally:
        service.shutdown()


class _AlwaysCrashingService(ExperimentService):
    """Every dispatch crashes the worker (breaker-trip scenario)."""

    def _before_execute(self, entry) -> None:
        raise RuntimeError("chaos: worker crash")


def breaker_trip(root: Path, seed: int, expected: bytes) -> ChaosOutcome:
    """N consecutive worker crashes must trip the circuit breaker:
    the next submission is a typed 503 with ``reason="breaker-open"``,
    never an accepted-then-lost sweep."""
    name = "svc-breaker-trip"
    service = _AlwaysCrashingService(
        _service_ctx(root), workers=1, breaker_threshold=2,
        breaker_cooldown=60.0, journal_dir=None).start()
    try:
        for scale in (1, 2):
            sweep = service.submit(SubmitRequest(
                jobs=(JobSpec(workload=WORKLOAD, scale=scale),)))
            service.wait(sweep.sweep_id, timeout=_WAIT)
        try:
            service.submit(SubmitRequest(
                jobs=(JobSpec(workload=WORKLOAD, scale=3),)))
        except ServiceUnavailable as err:
            if err.reason == "breaker-open" and err.http_status == 503:
                return _classify(
                    name, seed, DETECTED, injections=2, violations=1,
                    detail=f"breaker open after 2 crashes; typed 503, "
                           f"retry_after={err.retry_after}")
            return _classify(name, seed, SILENT, injections=2,
                             detail=f"503 carried reason={err.reason!r}, "
                                    f"expected breaker-open")
        return _classify(name, seed, SILENT, injections=2,
                         detail="breaker did not trip after 2 "
                                "consecutive worker crashes")
    finally:
        service.shutdown()


# ------------------------------------------------------ journal faults


def _journaled_submissions(root: Path) -> tuple[Path, str]:
    """Admit two sweeps of the same job into a journal without ever
    starting workers, then shut down (parking the queued job).  The
    journal lines are then: start, admit sweep-1, admit sweep-2 (it
    coalesces), park.  Returns (journal path, fingerprint)."""
    journal_dir = root / "journal"
    service = ExperimentService(_service_ctx(root), workers=1,
                                journal_dir=journal_dir)
    first = service.submit(_go_sweep())
    service.submit(_go_sweep())
    service.shutdown()
    return journal_dir / JOURNAL_NAME, first.statuses[0].fingerprint


def _resume_and_check(root: Path, sweep_ids: list[str],
                      expected: bytes) -> str | None:
    """Restart a service over the (damaged) journal, wait for the
    given sweeps, compare served bytes.  None on success, else the
    failure detail."""
    clear_memo()
    service = ExperimentService(_service_ctx(root), workers=1,
                                journal_dir=root / "journal").start()
    try:
        for sweep_id in sweep_ids:
            status = service.wait(sweep_id, timeout=_WAIT)
            if not status.done:
                return f"{sweep_id} never finished after resume"
            if not status.ok:
                return (f"{sweep_id} failed after resume: "
                        f"{status.statuses[0].error}")
            payload = service.result_bytes(
                status.statuses[0].fingerprint)
            if payload != expected:
                return (f"{sweep_id} served bytes differing from the "
                        f"local engine run")
        return None
    finally:
        service.shutdown()


def journal_torn_tail(root: Path, seed: int,
                      expected: bytes) -> ChaosOutcome:
    """kill -9 mid-append leaves a half-written final journal line:
    replay must count the torn tail, keep everything before it, and
    resume both sweeps to byte-identical results."""
    name = "svc-journal-torn"
    path, _ = _journaled_submissions(root)
    raw = path.read_bytes()
    if not raw.endswith(b"\n") or len(raw) < 16:
        return _classify(name, seed, UNARMED,
                         detail="journal too small to tear")
    path.write_bytes(raw[:-10])         # half-written final record
    torn_counter = get_registry().counter("service.journal.torn_tail")
    before = torn_counter.value
    detail = _resume_and_check(root, ["sweep-000001", "sweep-000002"],
                               expected)
    if detail is not None:
        return _classify(name, seed, SILENT, detail=detail)
    if torn_counter.value <= before:
        return _classify(name, seed, SILENT,
                         detail="torn tail resumed but never counted")
    return _classify(name, seed, DETECTED, violations=1,
                     detail="torn tail counted; both sweeps resumed "
                            "byte-identical")


def journal_bitflip(root: Path, seed: int,
                    expected: bytes) -> ChaosOutcome:
    """A flipped bit inside a mid-file journal record must fail that
    record's digest: the record is counted and skipped (its sweep is
    visibly lost, a 404), and the surviving sweep still resumes to
    byte-identical results — never replayed as wrong state."""
    name = "svc-journal-bitflip"
    path, _ = _journaled_submissions(root)
    lines = path.read_bytes().split(b"\n")
    if len(lines) < 3:
        return _classify(name, seed, UNARMED,
                         detail="journal too small to corrupt")
    # Flip the low bit of one byte inside sweep-1's admission record
    # (line index 1; line 0 is service.start).  The low bit keeps the
    # damage inside the line — no byte can become a newline — so this
    # is unambiguously a *mid-file* corruption, not a torn tail.
    target = bytearray(lines[1])
    at = derive_seed(seed, WORKLOAD, name) % len(target)
    target[at] ^= 0x01
    lines[1] = bytes(target)
    path.write_bytes(b"\n".join(lines))
    bad_counter = get_registry().counter("service.journal.bad_records")
    before = bad_counter.value
    clear_memo()
    service = ExperimentService(_service_ctx(root), workers=1,
                                journal_dir=root / "journal").start()
    try:
        try:
            service.status("sweep-000001")
            # The corrupted admission record must be *skipped*, so the
            # reborn service cannot know this sweep: reaching here
            # means damaged state was replayed as real.
            return _classify(name, seed, SILENT,
                             detail="corrupted admission record was "
                                    "replayed as state")
        except NotFound:
            pass
        status = service.wait("sweep-000002", timeout=_WAIT)
        if not status.ok:
            return _classify(name, seed, SILENT,
                             detail="surviving sweep failed after "
                                    "resume")
        payload = service.result_bytes(status.statuses[0].fingerprint)
    finally:
        service.shutdown()
    if payload != expected:
        return _classify(name, seed, SILENT,
                         detail="surviving sweep served bytes "
                                "differing from the local engine run")
    if bad_counter.value <= before:
        return _classify(name, seed, SILENT,
                         detail="corrupt record never counted")
    return _classify(name, seed, DETECTED, violations=1,
                     detail="bad record counted and skipped; corrupted "
                            "sweep visibly lost; survivor "
                            "byte-identical")


# ---------------------------------------------------------- CAS faults


def cas_shard_corrupt(root: Path, seed: int,
                      expected: bytes) -> ChaosOutcome:
    """A corrupted entry inside a CAS shard, read concurrently: every
    reader must see a miss (exactly one quarantine, no crash), and a
    resubmission must re-simulate to byte-identical results."""
    name = "svc-cas-corrupt"
    clear_memo()
    ctx = _service_ctx(root)
    service = ExperimentService(ctx, workers=1, journal_dir=None).start()
    try:
        status = service.wait(service.submit(_go_sweep()).sweep_id,
                              timeout=_WAIT)
    finally:
        service.shutdown()
    if not status.ok:
        return _classify(name, seed, UNARMED,
                         detail="clean run failed; nothing stored")
    fingerprint = status.statuses[0].fingerprint
    store = ShardedResultCache(ctx.cache_dir)
    entries = store.entries()
    if not entries:
        return _classify(name, seed, UNARMED,
                         detail="no CAS entry was stored")
    detail = corrupt_file(entries[0], mode="bitflip",
                          seed=derive_seed(seed, WORKLOAD, name))

    served: list = []
    errors: list[BaseException] = []

    def read() -> None:
        try:
            served.append(store.load_by_fingerprint(fingerprint))
        except BaseException as err:  # noqa: BLE001 — the proof target
            errors.append(err)

    readers = [threading.Thread(target=read) for _ in range(4)]
    for thread in readers:
        thread.start()
    for thread in readers:
        thread.join(timeout=60)
    if errors:
        return _classify(name, seed, SILENT,
                         detail=f"concurrent read crashed: "
                                f"{type(errors[0]).__name__}: {errors[0]}")
    if any(entry is not None for entry in served):
        return _classify(name, seed, SILENT,
                         detail=f"{detail}; corrupt entry was served")
    quarantined = store.quarantined()
    if not quarantined:
        return _classify(name, seed, SILENT,
                         detail=f"{detail}; entry was not quarantined")
    clear_memo()                        # the reborn run must simulate
    reborn = ExperimentService(_service_ctx(root), workers=1,
                               journal_dir=None).start()
    try:
        again = reborn.wait(reborn.submit(_go_sweep()).sweep_id,
                            timeout=_WAIT)
        if not again.ok:
            return _classify(name, seed, SILENT,
                             detail="re-simulation after quarantine "
                                    "failed")
        payload = reborn.result_bytes(again.statuses[0].fingerprint)
    finally:
        reborn.shutdown()
    if payload != expected:
        return _classify(name, seed, SILENT,
                         detail="re-simulation served bytes differing "
                                "from the local engine run")
    return _classify(name, seed, DETECTED,
                     violations=len(quarantined),
                     detail=f"{detail}; quarantined under concurrent "
                            f"reads, re-simulated byte-identical")


# ------------------------------------------------------ transport faults


class _HttpHarness:
    """A real :class:`HttpFrontend` on a private event-loop thread,
    so transport scenarios exercise actual sockets."""

    def __init__(self, service: ExperimentService) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever,
                                        name="chaos-http", daemon=True)
        self._thread.start()
        self.frontend = HttpFrontend(service, "127.0.0.1", 0)
        future = asyncio.run_coroutine_threadsafe(
            self.frontend.start(), self._loop)
        self.host, self.port = future.result(timeout=30)

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.frontend.close(), self._loop).result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()


def _raw_request(host: str, port: int, request: bytes,
                 timeout: float = 60.0) -> tuple[int, bytes]:
    """One raw HTTP exchange; returns (status code, body bytes)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(request)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    response = b"".join(chunks)
    head, _, body = response.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].split()
    return int(status_line[1]), body


def stalled_stream(root: Path, seed: int,
                   expected: bytes) -> ChaosOutcome:
    """A progress-stream subscriber that never reads: the sweep must
    finish unimpeded, a healthy subscriber must still get the full
    stream, and the served bytes must stay identical — the stall is
    provably *masked*."""
    name = "svc-stalled-stream"
    clear_memo()
    service = ExperimentService(_service_ctx(root), workers=1,
                                journal_dir=None).start()
    harness = _HttpHarness(service)
    stalled = None
    try:
        sweep = service.submit(_go_sweep())
        stalled = socket.create_connection((harness.host, harness.port),
                                           timeout=60)
        stalled.sendall(f"GET /v1/sweeps/{sweep.sweep_id}/events "
                        f"HTTP/1.1\r\nHost: chaos\r\n\r\n".encode())
        # Never read: the response sits unconsumed in the socket while
        # the sweep runs.
        status = service.wait(sweep.sweep_id, timeout=_WAIT)
        if not status.ok:
            return _classify(name, seed, SILENT,
                             detail="sweep failed under a stalled "
                                    "subscriber")
        code, body = _raw_request(
            harness.host, harness.port,
            f"GET /v1/sweeps/{sweep.sweep_id}/events HTTP/1.1\r\n"
            f"Host: chaos\r\n\r\n".encode())
        if code != 200 or b'"sweep.end"' not in body:
            return _classify(name, seed, SILENT,
                             detail="healthy subscriber's stream was "
                                    "incomplete")
        payload = service.result_bytes(status.statuses[0].fingerprint)
        if payload != expected:
            return _classify(name, seed, SILENT,
                             detail="served bytes differ from the "
                                    "local engine run")
        return _classify(name, seed, MASKED,
                         detail="stalled subscriber never slowed the "
                                "sweep; healthy stream complete")
    finally:
        if stalled is not None:
            stalled.close()
        harness.close()
        service.shutdown()


def malformed_request(root: Path, seed: int,
                      expected: bytes) -> ChaosOutcome:
    """A non-JSON POST body must come back as the typed 400, never a
    dropped connection or a 500."""
    name = "svc-malformed-request"
    service = ExperimentService(_service_ctx(root), workers=1,
                                journal_dir=None).start()
    harness = _HttpHarness(service)
    try:
        body = b"{this is not json"
        code, payload = _raw_request(
            harness.host, harness.port,
            b"POST /v1/sweeps HTTP/1.1\r\nHost: chaos\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode() + body)
        document = json.loads(payload.decode("utf-8"))
        if code == 400 and document.get("error") == "invalid-request":
            return _classify(name, seed, DETECTED, violations=1,
                             detail="typed 400 invalid-request")
        return _classify(name, seed, SILENT,
                         detail=f"got {code} error="
                                f"{document.get('error')!r}")
    finally:
        harness.close()
        service.shutdown()


def oversized_request(root: Path, seed: int,
                      expected: bytes) -> ChaosOutcome:
    """A request claiming a body over the 8 MB cap must come back as
    the typed 413 with the limit in the body."""
    name = "svc-oversized-request"
    service = ExperimentService(_service_ctx(root), workers=1,
                                journal_dir=None).start()
    harness = _HttpHarness(service)
    try:
        code, payload = _raw_request(
            harness.host, harness.port,
            b"POST /v1/sweeps HTTP/1.1\r\nHost: chaos\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 9437184\r\n\r\n")
        document = json.loads(payload.decode("utf-8"))
        details = document.get("details") or {}
        if (code == 413 and document.get("error") == "payload-too-large"
                and details.get("limit")):
            return _classify(name, seed, DETECTED, violations=1,
                             detail=f"typed 413, limit="
                                    f"{details['limit']}")
        return _classify(name, seed, SILENT,
                         detail=f"got {code} error="
                                f"{document.get('error')!r}")
    finally:
        harness.close()
        service.shutdown()


# -------------------------------------------------------------- suite

#: Scenario catalog, in presentation order.
SERVICE_SCENARIOS = {
    "svc-worker-death": worker_death,
    "svc-breaker-trip": breaker_trip,
    "svc-journal-torn": journal_torn_tail,
    "svc-journal-bitflip": journal_bitflip,
    "svc-cas-corrupt": cas_shard_corrupt,
    "svc-stalled-stream": stalled_stream,
    "svc-malformed-request": malformed_request,
    "svc-oversized-request": oversized_request,
}

#: What each scenario owes ("detected" or "masked"), for the catalog.
SCENARIO_EXPECT = {
    name: (MASKED if name == "svc-stalled-stream" else DETECTED)
    for name in SERVICE_SCENARIOS
}


def service_chaos_suite(seed: int = 0,
                        scenarios: list[str] | None = None,
                        progress=None) -> list[ChaosOutcome]:
    """Run the service scenario matrix; one :class:`ChaosOutcome` per
    scenario.  A scenario that *itself* crashes is a silent failure —
    a broken proof is not a passing one."""
    names = list(SERVICE_SCENARIOS) if scenarios is None else list(
        scenarios)
    unknown = [n for n in names if n not in SERVICE_SCENARIOS]
    if unknown:
        raise ValueError(f"unknown service scenario(s) "
                         f"{', '.join(unknown)} "
                         f"(known: {', '.join(SERVICE_SCENARIOS)})")
    if progress is not None:
        progress("service reference run (local engine)")
    expected = _expected_bytes()
    outcomes: list[ChaosOutcome] = []
    for name in names:
        trial_seed = derive_seed(seed, WORKLOAD, name)
        try:
            with tempfile.TemporaryDirectory(
                    prefix=f"chaos-{name}-") as tmp:
                outcome = SERVICE_SCENARIOS[name](
                    Path(tmp), trial_seed, expected)
        except Exception as err:  # noqa: BLE001 — a crashed proof fails
            outcome = _classify(
                name, trial_seed, SILENT,
                detail=f"scenario crashed: "
                       f"{type(err).__name__}: {err}")
        outcomes.append(outcome)
        if progress is not None:
            progress(f"{name}: {outcome.verdict}")
    return outcomes
