"""The run engine: schedule simulation jobs, merge results deterministically.

The engine owns the three result tiers and consults them in order:

1. the **in-process memo** (shared by every engine in the process, so
   figure renderers re-requesting a run after the engine pre-ran it pay
   nothing — the old ``experiments.base._CACHE`` behavior);
2. the **persistent on-disk cache** (:class:`~repro.exec.cache.ResultCache`),
   keyed by workload, scale, config fingerprint, and schema version, so
   a warm re-run of the full suite costs milliseconds;
3. **fresh simulation** — in-process when ``ctx.jobs == 1``, fanned out
   over a :class:`~concurrent.futures.ProcessPoolExecutor` otherwise.

Determinism: fresh results are collected in job-submission order (never
``as_completed``), and *every* fresh result — serial or pooled — passes
through the same serialize/deserialize round trip the cache uses, so
counters are bit-exact across all three tiers by construction.

Fault tolerance (the robustness layer, :mod:`repro.robust`): each job
gets a per-attempt wall-clock timeout (pooled mode), bounded retries
with deterministic exponential backoff, and the pool is rebuilt — with
only the *lost* jobs requeued — when a child process dies
(``BrokenProcessPool``) or a hung job has to be killed.  Because a
dead child breaks **every** pending future, a pool break charges no
job an attempt; the next round instead runs each pending job in
**isolation** (its own single-worker pool), where any failure —
including killing the pool again — unambiguously belongs to that job.
This keeps retry accounting fair *and* guarantees termination: a job
that reliably kills its pool exhausts its own attempts, not its
neighbors'.  Per-job outcomes land in a
:class:`~repro.robust.report.RunReport`; :meth:`RunEngine.run_jobs`
raises a typed :class:`~repro.robust.report.SuiteFailure` when jobs
ultimately fail, while :meth:`RunEngine.run_jobs_report` returns the
survivors plus the report so callers can degrade gracefully.

Jobs that ultimately failed are remembered for the life of the
process (like the memo, cleared by :func:`clear_memo` or bypassed by
``refresh``): a figure renderer re-requesting a failed job gets an
immediate failed outcome instead of re-simulating — or worse,
crashing — during the render phase.

Observability (the performance layer, :mod:`repro.perf`): pass a
:class:`~repro.perf.trace.SpanTracer` and the engine records one span
tree per batch — schedule, per-job queue-wait, worker execute (with
warmup / run / serialize child phases), cache store / hit /
quarantine, and retry / backoff / requeue rounds — exportable as
Chrome trace JSON and cross-linked (by span id) into the obs run
manifests.  Span accounting is exact by construction: every charged
attempt and every success records exactly one ``execute`` span, every
cache-tier outcome exactly one ``cache.hit`` span.  Independently of
tracing, every worker returns a wall-clock phase breakdown and a
metrics snapshot (:mod:`repro.perf.metrics`) that merge into the
parent's process-wide registry, and :class:`EngineStats` deltas mirror
into ``engine.*`` counters there.  Timing metadata never enters the
result payloads or the disk cache: cached bytes stay a pure function
of (workload, config, scale).

:data:`GLOBAL_STATS` accumulates over every engine in the process; the
CLI's end-of-suite summary and the CI warm-cache check ("zero fresh
simulations") read it.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.machine import Machine, RunResult
from repro.exec.cache import ResultCache
from repro.exec.context import RunContext
from repro.exec.jobs import Job, dedupe
from repro.exec.serialize import (
    dict_divergences,
    result_from_dict,
    result_to_dict,
)
from repro.obs.export import build_manifest, write_manifest
from repro.obs.sampler import IntervalSampler
from repro.perf.clock import epoch_now, perf_now
from repro.perf.metrics import MetricsRegistry, get_registry
from repro.robust.faults import apply_fault
from repro.robust.report import (
    FAILED,
    OK,
    TIMED_OUT,
    JobOutcome,
    RunReport,
    SuiteFailure,
)
from repro.robust.retry import RetryPolicy
from repro.workloads.registry import get_workload, resolve_warmup

if TYPE_CHECKING:   # engine never imports the tracer at runtime
    from repro.perf.trace import SpanTracer

#: Process-wide result memo, shared by all engines (the figure modules'
#: ``run()`` functions hit it after the engine pre-ran their jobs).
_MEMO: dict[tuple, RunResult] = {}

#: Jobs that exhausted their retries this process: key -> (status,
#: error).  Render-phase re-requests short-circuit to a failed outcome
#: instead of re-simulating behind the suite's back.
_FAILED: dict[tuple, tuple[str, str]] = {}


def clear_memo() -> None:
    """Drop every memoized result and failure marker (tests; the disk
    cache is untouched)."""
    _MEMO.clear()
    _FAILED.clear()


@dataclass
class EngineStats:
    """Where results came from, for one engine or process-wide.

    Every delta recorded here also increments the matching
    ``engine.<field>`` counter in the process-wide metrics registry
    (:func:`repro.perf.metrics.get_registry`), so the exported metrics
    snapshot and this summary can never drift apart.
    """

    jobs_requested: int = 0    # jobs passed to run_jobs (pre-dedup)
    jobs_unique: int = 0       # after dedup
    memo_hits: int = 0         # served from the in-process memo
    cache_hits: int = 0        # rehydrated from the on-disk cache
    fresh_runs: int = 0        # actual simulations executed
    cache_stores: int = 0      # entries written to the on-disk cache
    cache_quarantined: int = 0  # corrupt entries moved to quarantine/
    job_retries: int = 0       # extra attempts beyond each job's first
    jobs_timed_out: int = 0    # jobs whose every attempt hit the timeout
    jobs_failed: int = 0       # jobs with no result after all attempts

    _FIELDS = ("jobs_requested", "jobs_unique", "memo_hits", "cache_hits",
               "fresh_runs", "cache_stores", "cache_quarantined",
               "job_retries", "jobs_timed_out", "jobs_failed")

    def add(self, other: "EngineStats") -> None:
        for name in self._FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def summary(self) -> str:
        text = (f"{self.fresh_runs} fresh, {self.cache_hits} from disk "
                f"cache, {self.memo_hits} memoized "
                f"({self.jobs_unique} unique of "
                f"{self.jobs_requested} requested)")
        extras = []
        if self.cache_quarantined:
            extras.append(f"{self.cache_quarantined} cache "
                          f"entr{'y' if self.cache_quarantined == 1 else 'ies'}"
                          f" quarantined")
        if self.job_retries:
            extras.append(f"{self.job_retries} retries")
        if self.jobs_timed_out:
            extras.append(f"{self.jobs_timed_out} timed out")
        if self.jobs_failed:
            extras.append(f"{self.jobs_failed} failed")
        if extras:
            text += "; " + ", ".join(extras)
        return text


#: Accumulated over every engine in this process.
GLOBAL_STATS = EngineStats()


class BackendDivergence(RuntimeError):
    """``backend="both"`` found the fast and reference results unequal:
    the fast backend's bit-exactness contract is broken for this job."""


def _simulate(job: Job, obs: bool, fault: str | None = None,
              backend: str = "reference", memo: bool = True) -> dict:
    """Execute one job (worker-side): warmup, detailed run, serialize.

    Returns ``{"result": <dict>, "manifest": <dict | None>, "timing":
    <dict>, "metrics": <dict>}`` — plain JSON-safe data, equally happy
    to cross a process boundary or land in the cache.  Only ``result``
    and ``manifest`` are ever cached; ``timing`` (epoch stamps of the
    warmup / run / serialize phases) and ``metrics`` (this worker's
    registry snapshot) describe *this* execution and are consumed by
    the parent's tracer and metrics registry, then dropped.  ``fault``
    is a chaos-harness token (:func:`repro.robust.faults.apply_fault`)
    interpreted before the simulation starts.

    ``backend`` selects the simulator: ``"fast"`` runs the two-phase
    :class:`~repro.fastsim.machine.FastMachine` (unless obs
    instrumentation was requested — probes only exist on the reference
    machine, so obs forces the reference path); ``"both"`` runs the
    reference then the fast backend on an identical program and raises
    :class:`BackendDivergence` naming the divergent result paths unless
    the serialized results are equal.  ``memo`` gates proof-carrying
    block memoization inside the fast backend (``--no-memo``); the
    reference machine ignores it.
    """
    t_start = epoch_now()
    apply_fault(fault)
    workload = get_workload(job.workload)
    warmup = resolve_warmup(workload, job.scale)
    fast_kwargs = {}
    machine_cls = Machine
    if backend == "fast" and not obs:
        from repro.fastsim.machine import FastMachine
        machine_cls = FastMachine
        fast_kwargs = {"memo": memo}
    machine = machine_cls(workload.build(job.scale), job.config,
                          **fast_kwargs)
    sampler = None
    if obs:
        sampler = IntervalSampler(window=job.config.obs.sampler_window)
        machine.add_probe(sampler)
        machine.enable_stall_attribution()
    machine.fast_forward(warmup)
    cross = None
    if backend == "both":
        from repro.fastsim.machine import FastMachine
        cross = FastMachine(workload.build(job.scale), job.config,
                            memo=memo)
        cross.fast_forward(warmup)
    t_run = epoch_now()
    result = machine.run(max_insts=workload.window)
    cross_result = (cross.run(max_insts=workload.window)
                    if cross is not None else None)
    t_serialize = epoch_now()
    manifest = None
    if sampler is not None:
        sampler.finish(machine)
        manifest = build_manifest(
            result, attribution=machine.attribution, sampler=sampler,
            workload=job.workload, scale=job.scale)
    payload_result = result_to_dict(result)
    if cross_result is not None:
        divergent = dict_divergences(payload_result,
                                     result_to_dict(cross_result))
        if divergent:
            raise BackendDivergence(
                f"{job.workload} (scale {job.scale}): fast backend "
                f"diverges from reference at {', '.join(divergent)}")
    t_end = epoch_now()

    registry = MetricsRegistry()
    registry.counter("sim.runs").inc()
    registry.counter("sim.cycles").inc(result.stats.cycles)
    registry.counter("sim.committed").inc(result.stats.committed)
    registry.histogram("sim.warmup_seconds").observe(t_run - t_start)
    registry.histogram("sim.run_seconds").observe(t_serialize - t_run)
    registry.histogram("sim.serialize_seconds").observe(t_end - t_serialize)
    for sim in (machine, cross):
        stats = getattr(sim, "memo_stats", None)
        if stats is None:
            continue
        memo_stats = stats()
        if not memo_stats.get("enabled"):
            continue
        registry.counter("sim.memo.hits").inc(memo_stats["hits"])
        registry.counter("sim.memo.misses").inc(memo_stats["misses"])
        registry.counter("sim.memo.replayed_insts").inc(
            memo_stats["replayed_insts"])
    return {
        "result": payload_result,
        "manifest": manifest,
        "timing": {"pid": os.getpid(), "start": t_start, "run": t_run,
                   "serialize": t_serialize, "end": t_end},
        "metrics": registry.snapshot(),
    }


class _Attempts:
    """Per-job attempt ledger for one batch of fresh jobs."""

    def __init__(self, jobs: list[Job], policy: RetryPolicy) -> None:
        self.policy = policy
        self.count: dict[tuple, int] = {job.key: 0 for job in jobs}
        self.wall: dict[tuple, float] = {job.key: 0.0 for job in jobs}
        self.last_error: dict[tuple, str] = {}
        self.last_status: dict[tuple, str] = {}

    def charge(self, job: Job, status: str, error: str,
               wall: float = 0.0) -> None:
        self.count[job.key] += 1
        self.wall[job.key] += wall
        self.last_status[job.key] = status
        self.last_error[job.key] = error

    def add_wall(self, job: Job, wall: float) -> None:
        self.wall[job.key] += wall

    def exhausted(self, job: Job) -> bool:
        return self.count[job.key] >= self.policy.max_attempts

    def outcome(self, job: Job, status: str | None = None) -> JobOutcome:
        """Terminal outcome for a job (success if ``status`` is OK)."""
        if status == OK:
            return JobOutcome(job, status=OK,
                              attempts=self.count[job.key] + 1,
                              wall_seconds=self.wall[job.key])
        return JobOutcome(job,
                          status=self.last_status.get(job.key, FAILED),
                          attempts=self.count[job.key],
                          error=self.last_error.get(job.key),
                          wall_seconds=self.wall[job.key])


class RunEngine:
    """Runs batches of jobs under one :class:`RunContext`.

    ``tracer`` (optional, a :class:`~repro.perf.trace.SpanTracer`)
    turns on span recording for every batch this engine runs; with
    ``None`` (the default) no recording site allocates anything.
    """

    def __init__(self, ctx: RunContext | None = None,
                 tracer: "SpanTracer | None" = None) -> None:
        self.ctx = ctx or RunContext()
        self.stats = EngineStats()
        self.tracer = tracer
        #: job key -> span id of the span that produced its result
        #: (execute or cache.hit), for manifest cross-linking.
        self._span_of: dict[tuple, int] = {}
        if self.ctx.cache_dir is None:
            self._cache = None
        elif self.ctx.cache_layout == "cas":
            from repro.exec.shards import ShardedResultCache
            self._cache = ShardedResultCache(
                self.ctx.cache_dir, on_quarantine=self._on_quarantine)
        else:
            self._cache = ResultCache(self.ctx.cache_dir,
                                      on_quarantine=self._on_quarantine)

    def _on_quarantine(self, path, reason: str) -> None:
        self._bump(cache_quarantined=1)
        if self.tracer is not None:
            self.tracer.instant("cache.quarantine", "cache",
                                entry=path.name, reason=reason)

    # ------------------------------------------------------------------ API

    def run_jobs(self, jobs: list[Job]) -> dict[tuple, RunResult]:
        """Run (or recall) every job; returns results keyed by
        :attr:`Job.key`.  Duplicate jobs are executed once.

        Raises :class:`~repro.robust.report.SuiteFailure` (carrying the
        full :class:`~repro.robust.report.RunReport`) if any job is
        still failing after retries; callers that can render partial
        results should use :meth:`run_jobs_report` instead.
        """
        results, report = self.run_jobs_report(jobs)
        if not report.ok:
            raise SuiteFailure(report)
        return results

    def run_jobs_report(
            self, jobs: list[Job],
    ) -> tuple[dict[tuple, RunResult], RunReport]:
        """Like :meth:`run_jobs`, but degrade instead of raising:
        returns the surviving results plus the per-job report."""
        unique = dedupe(jobs)
        self._bump(jobs_requested=len(jobs), jobs_unique=len(unique))
        tracer = self.tracer
        batch = (tracer.begin("suite.batch", "engine",
                              jobs_requested=len(jobs),
                              jobs_unique=len(unique))
                 if tracer is not None else None)

        report = RunReport()
        results: dict[tuple, RunResult] = {}
        fresh: list[Job] = []
        schedule = (tracer.begin("schedule", "engine")
                    if tracer is not None else None)
        for job in unique:
            if job.key in _FAILED and not self.ctx.refresh:
                status, error = _FAILED[job.key]
                report.add(JobOutcome(job, status=status, attempts=0,
                                      error=f"(failed earlier this "
                                            f"process) {error}"))
                continue
            t0 = perf_now()
            result, source = self._recall(job)
            if result is not None:
                results[job.key] = result
                report.add(JobOutcome(job, status=OK, attempts=0,
                                      source=source,
                                      wall_seconds=perf_now() - t0))
            else:
                fresh.append(job)
        if schedule is not None:
            tracer.end(schedule, fresh=len(fresh))

        payloads = self._execute(fresh, report)
        for job in fresh:
            payload = payloads.get(job.key)
            if payload is not None:
                results[job.key] = self._absorb(job, payload)
        if batch is not None:
            tracer.end(batch)
        return results, report

    def run(self, job: Job) -> RunResult:
        """Convenience single-job entry point."""
        return self.run_jobs([job])[job.key]

    # ------------------------------------------------------------- recall

    def _recall(self, job: Job) -> tuple[RunResult | None, str]:
        """Serve a job from the memo or the disk cache, if allowed;
        returns ``(result, tier)``."""
        ctx = self.ctx
        tracer = self.tracer
        if not ctx.use_cache or ctx.refresh:
            return None, "fresh"
        if ctx.backend == "both":
            # The whole point of "both" is the cross-check; a recalled
            # result would skip it.  Always simulate fresh.
            return None, "fresh"
        result = _MEMO.get(job.key)
        if result is not None:
            self._bump(memo_hits=1)
            if tracer is not None:
                self._span_of[job.key] = tracer.instant(
                    "cache.hit", "cache", job=job.stem(), tier="memo")
            return result, "memo"
        if self._cache is None:
            return None, "fresh"
        t0 = tracer.now() if tracer is not None else 0.0
        entry = self._cache.load(job)
        if entry is None:
            return None, "fresh"
        if ctx.wants_obs and entry.get("manifest") is None:
            # Obs artifacts were requested but this entry was produced
            # without instrumentation: only a fresh run can supply them.
            return None, "fresh"
        result = result_from_dict(entry["result"], config=job.config)
        self._bump(cache_hits=1)
        _MEMO[job.key] = result
        span = None
        if tracer is not None:
            span = tracer.add_rel("cache.hit", "cache", t0, tracer.now(),
                                  job=job.stem(), tier="disk")
            self._span_of[job.key] = span
        if ctx.wants_obs:
            manifest = entry["manifest"]
            if span is not None:
                manifest = {**manifest, "trace": {"span_id": span}}
            write_manifest(ctx.obs_dir, manifest, stem=job.stem())
        return result, "cache"

    # ------------------------------------------------------------ execute

    def _execute(self, fresh: list[Job],
                 report: RunReport) -> dict[tuple, dict]:
        """Simulate every job in ``fresh`` with retries; returns the
        payloads of the survivors and records every outcome."""
        if not fresh:
            return {}
        policy = RetryPolicy(retries=self.ctx.retries,
                             backoff=self.ctx.backoff)
        attempts = _Attempts(fresh, policy)
        if self.ctx.jobs == 1:
            payloads = self._execute_serial(fresh, attempts, report)
        else:
            payloads = self._execute_pooled(fresh, attempts, report)
        for job in fresh:
            outcome = report.outcome_of(job)
            if outcome is not None and not outcome.ok:
                _FAILED[job.key] = (outcome.status, outcome.error or "")
                if outcome.status == TIMED_OUT:
                    self._bump(jobs_timed_out=1)
                else:
                    self._bump(jobs_failed=1)
        return payloads

    def _execute_serial(self, fresh: list[Job], attempts: _Attempts,
                        report: RunReport) -> dict[tuple, dict]:
        """In-process execution with retries.  Timeouts cannot be
        enforced here — a hung simulation hangs the process — so
        ``ctx.timeout`` applies only in pooled mode."""
        payloads: dict[tuple, dict] = {}
        for job in fresh:
            while True:
                t0 = epoch_now()
                try:
                    payload = _simulate(job, self.ctx.wants_obs,
                                        self.ctx.fault_for(job.workload),
                                        self.ctx.backend, self.ctx.memo)
                except Exception as err:  # noqa: BLE001 — worker boundary
                    attempts.charge(job, FAILED, f"{type(err).__name__}: "
                                                 f"{err}",
                                    wall=epoch_now() - t0)
                    self._trace_attempt(job, attempts.count[job.key],
                                        "error", submit_epoch=t0)
                    if attempts.exhausted(job):
                        report.add(attempts.outcome(job))
                        break
                    self._backoff(attempts.policy.delay(
                        job.stem(), attempts.count[job.key]))
                    continue
                payloads[job.key] = payload
                self._finish_success(job, payload, attempts, report,
                                     submit_epoch=t0)
                break
        return payloads

    def _execute_pooled(self, fresh: list[Job], attempts: _Attempts,
                        report: RunReport) -> dict[tuple, dict]:
        """Fan-out execution with pool-break recovery.

        Round structure: a **fan-out** round submits every pending job
        to one shared pool; a job is charged an attempt only for its
        *own* worker exception or its own expired timeout.  A pool
        break (dead child, or a hung job the engine had to kill the
        pool over) charges nobody for the collateral — the unfinished
        jobs requeue, and the next round runs in **isolation**: each
        pending job alone in a single-worker pool, where every failure
        mode unambiguously belongs to it.  After an isolation round
        the engine returns to fan-out.
        """
        tracer = self.tracer
        payloads: dict[tuple, dict] = {}
        pending = list(fresh)
        isolate_next = False
        round_no = 0
        while pending:
            self._sleep_backoff(pending, attempts)
            round_no += 1
            kind = "round.isolation" if isolate_next else "round.fanout"
            span = (tracer.begin(kind, "engine", round=round_no,
                                 pending=len(pending))
                    if tracer is not None else None)
            if isolate_next:
                pending = self._isolation_round(pending, attempts,
                                                report, payloads)
                isolate_next = False
            else:
                pending, broke = self._fanout_round(pending, attempts,
                                                    report, payloads)
                isolate_next = broke
            if span is not None:
                tracer.end(span, requeued=len(pending))
        return payloads

    def _fanout_round(self, pending: list[Job], attempts: _Attempts,
                      report: RunReport, payloads: dict[tuple, dict],
                      ) -> tuple[list[Job], bool]:
        """One shared-pool round; returns (still pending, pool broke)."""
        ctx = self.ctx
        workers = min(ctx.jobs, len(pending))
        pool = ProcessPoolExecutor(max_workers=workers)
        submits: dict[tuple, float] = {}
        futures: list[tuple[Job, Future]] = []
        for job in pending:
            submits[job.key] = epoch_now()
            futures.append(
                (job, pool.submit(_simulate, job, ctx.wants_obs,
                                  ctx.fault_for(job.workload),
                                  ctx.backend, ctx.memo)))
        requeue: list[Job] = []
        broke = False
        for job, future in futures:
            if broke:
                # The pool is already down: harvest finished results,
                # requeue the rest without charging anyone.
                if future.done() and not future.cancelled():
                    self._harvest_done(job, future, attempts, report,
                                       payloads, requeue,
                                       submits[job.key])
                else:
                    requeue.append(job)
                continue
            try:
                payload = future.result(timeout=ctx.timeout)
            except FutureTimeout:
                # This job's own deadline expired: charged.  The only
                # way to reclaim the wedged worker is to put the whole
                # pool down; the collateral jobs requeue uncharged.
                attempts.charge(job, TIMED_OUT,
                                f"no result within {ctx.timeout}s",
                                wall=ctx.timeout or 0.0)
                self._trace_attempt(job, attempts.count[job.key],
                                    "timeout",
                                    submit_epoch=submits[job.key])
                self._finish_or_requeue(job, attempts, report, requeue)
                self._kill_pool(pool)
                broke = True
            except (BrokenExecutor, CancelledError) as err:
                # A child died.  Every pending future fails with this,
                # so the victim cannot be attributed: charge nobody,
                # requeue everything unfinished, isolate next round.
                requeue.append(job)
                attempts.last_error.setdefault(
                    job.key, f"pool broke: {type(err).__name__}: {err}")
                broke = True
            except Exception as err:  # noqa: BLE001 — worker boundary
                attempts.charge(job, FAILED,
                                f"{type(err).__name__}: {err}",
                                wall=epoch_now() - submits[job.key])
                self._trace_attempt(job, attempts.count[job.key],
                                    "error",
                                    submit_epoch=submits[job.key])
                self._finish_or_requeue(job, attempts, report, requeue)
            else:
                payloads[job.key] = payload
                self._finish_success(job, payload, attempts, report,
                                     submit_epoch=submits[job.key])
        if broke:
            self._kill_pool(pool)
        else:
            pool.shutdown(wait=True)
        return requeue, broke

    def _isolation_round(self, pending: list[Job], attempts: _Attempts,
                         report: RunReport,
                         payloads: dict[tuple, dict]) -> list[Job]:
        """Run each pending job alone in a fresh single-worker pool.

        With no pool-mates, *every* failure — exception, timeout, even
        killing the pool — belongs to the job and is charged, which is
        what guarantees a reliably pool-killing job terminates instead
        of recycling forever."""
        ctx = self.ctx
        requeue: list[Job] = []
        for job in pending:
            pool = ProcessPoolExecutor(max_workers=1)
            submit_epoch = epoch_now()
            future = pool.submit(_simulate, job, ctx.wants_obs,
                                 ctx.fault_for(job.workload),
                                 ctx.backend, ctx.memo)
            try:
                payload = future.result(timeout=ctx.timeout)
            except FutureTimeout:
                attempts.charge(job, TIMED_OUT,
                                f"no result within {ctx.timeout}s "
                                f"(isolated)",
                                wall=ctx.timeout or 0.0)
                self._trace_attempt(job, attempts.count[job.key],
                                    "timeout", submit_epoch=submit_epoch)
                self._finish_or_requeue(job, attempts, report, requeue)
                self._kill_pool(pool)
                continue
            except Exception as err:  # noqa: BLE001 — worker boundary
                attempts.charge(job, FAILED,
                                f"{type(err).__name__}: {err}",
                                wall=epoch_now() - submit_epoch)
                self._trace_attempt(job, attempts.count[job.key],
                                    "error", submit_epoch=submit_epoch)
                self._finish_or_requeue(job, attempts, report, requeue)
                self._kill_pool(pool)
                continue
            payloads[job.key] = payload
            self._finish_success(job, payload, attempts, report,
                                 submit_epoch=submit_epoch)
            pool.shutdown(wait=True)
        return requeue

    # ------------------------------------------------- execute plumbing

    def _harvest_done(self, job: Job, future: Future, attempts: _Attempts,
                      report: RunReport, payloads: dict[tuple, dict],
                      requeue: list[Job], submit_epoch: float) -> None:
        """Collect a future that finished before the pool went down."""
        try:
            payload = future.result(timeout=0)
        except (BrokenExecutor, CancelledError):
            requeue.append(job)
        except Exception as err:  # noqa: BLE001 — worker boundary
            attempts.charge(job, FAILED, f"{type(err).__name__}: {err}",
                            wall=epoch_now() - submit_epoch)
            self._trace_attempt(job, attempts.count[job.key], "error",
                                submit_epoch=submit_epoch)
            self._finish_or_requeue(job, attempts, report, requeue)
        else:
            payloads[job.key] = payload
            self._finish_success(job, payload, attempts, report,
                                 submit_epoch=submit_epoch)

    def _finish_success(self, job: Job, payload: dict,
                        attempts: _Attempts, report: RunReport,
                        submit_epoch: float | None = None) -> None:
        """Book a successful attempt: wall-clock, retries, span, outcome."""
        timing = payload.get("timing")
        if timing is not None:
            attempts.add_wall(job, timing["end"] - timing["start"])
        retries = attempts.count[job.key]
        if retries:
            self._bump(job_retries=retries)
        self._trace_attempt(job, attempts.count[job.key] + 1, "ok",
                            timing=timing, submit_epoch=submit_epoch)
        report.add(attempts.outcome(job, status=OK))

    def _trace_attempt(self, job: Job, attempt: int, outcome: str,
                       timing: dict | None = None,
                       submit_epoch: float | None = None) -> None:
        """Record exactly one ``execute`` span per charged attempt or
        success — the invariant behind
        :meth:`~repro.perf.trace.SpanTracer.accounting` matching the
        :class:`~repro.robust.report.RunReport` exactly.  Successful
        attempts use the worker's own phase stamps (plus a
        ``queue.wait`` span from submission to worker start); failures
        span from submission to the engine noticing."""
        tracer = self.tracer
        if tracer is None:
            return
        stem = job.stem()
        if timing is not None:
            if (submit_epoch is not None
                    and timing["start"] >= submit_epoch):
                tracer.add_epoch("queue.wait", "engine", submit_epoch,
                                 timing["start"], job=stem)
            span = tracer.add_epoch(
                "execute", "attempt", timing["start"], timing["end"],
                pid=timing["pid"], job=stem, workload=job.workload,
                attempt=attempt, outcome=outcome)
            tracer.add_epoch("sim.warmup", "sim", timing["start"],
                             timing["run"], parent=span,
                             pid=timing["pid"], job=stem)
            tracer.add_epoch("sim.run", "sim", timing["run"],
                             timing["serialize"], parent=span,
                             pid=timing["pid"], job=stem)
            tracer.add_epoch("serialize", "sim", timing["serialize"],
                             timing["end"], parent=span,
                             pid=timing["pid"], job=stem)
        else:
            start = submit_epoch if submit_epoch is not None else epoch_now()
            span = tracer.add_epoch(
                "execute", "attempt", start, epoch_now(), job=stem,
                workload=job.workload, attempt=attempt, outcome=outcome)
        self._span_of[job.key] = span

    def _finish_or_requeue(self, job: Job, attempts: _Attempts,
                           report: RunReport, requeue: list[Job]) -> None:
        if attempts.exhausted(job):
            report.add(attempts.outcome(job))
        else:
            requeue.append(job)

    def _sleep_backoff(self, pending: list[Job],
                       attempts: _Attempts) -> None:
        """One backoff sleep per retry round: the longest delay owed by
        any already-charged pending job (deterministic; zero on the
        first round)."""
        delay = 0.0
        for job in pending:
            charged = attempts.count[job.key]
            if charged:
                delay = max(delay, attempts.policy.delay(job.stem(),
                                                         charged))
        self._backoff(delay)

    def _backoff(self, policy_delay: float) -> None:
        if policy_delay > 0:
            if self.tracer is not None:
                with self.tracer.span("retry.backoff", "engine",
                                      delay=policy_delay):
                    time.sleep(policy_delay)
            else:
                time.sleep(policy_delay)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Put a pool down hard: terminate children (the only way to
        reclaim a wedged worker), then shut down without waiting."""
        processes = getattr(pool, "_processes", None)
        if processes:
            for process in list(processes.values()):
                process.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def _absorb(self, job: Job, payload: dict) -> RunResult:
        """Rehydrate one fresh payload and feed every result tier.

        The worker's metrics snapshot merges into the process-wide
        registry here; its timing stamps were consumed by the tracer
        at harvest.  Neither ever reaches the disk cache.
        """
        ctx = self.ctx
        tracer = self.tracer
        get_registry().merge(payload.get("metrics"))
        result = result_from_dict(payload["result"], config=job.config)
        self._bump(fresh_runs=1)
        _FAILED.pop(job.key, None)
        if ctx.use_cache:
            _MEMO[job.key] = result
            if self._cache is not None:
                t0 = tracer.now() if tracer is not None else 0.0
                self._cache.store(job, payload["result"],
                                  manifest=payload["manifest"])
                self._bump(cache_stores=1)
                if tracer is not None:
                    tracer.add_rel("cache.store", "cache", t0,
                                   tracer.now(), job=job.stem())
        if ctx.wants_obs and payload["manifest"] is not None:
            manifest = payload["manifest"]
            span = self._span_of.get(job.key)
            if tracer is not None and span is not None:
                manifest = {**manifest, "trace": {"span_id": span}}
            write_manifest(ctx.obs_dir, manifest, stem=job.stem())
        return result

    # -------------------------------------------------------------- stats

    def _bump(self, **deltas: int) -> None:
        registry = get_registry()
        for name, delta in deltas.items():
            setattr(self.stats, name, getattr(self.stats, name) + delta)
            setattr(GLOBAL_STATS, name,
                    getattr(GLOBAL_STATS, name) + delta)
            if delta:
                registry.counter(f"engine.{name}").inc(delta)
