"""The run engine: schedule simulation jobs, merge results deterministically.

The engine owns the three result tiers and consults them in order:

1. the **in-process memo** (shared by every engine in the process, so
   figure renderers re-requesting a run after the engine pre-ran it pay
   nothing — the old ``experiments.base._CACHE`` behavior);
2. the **persistent on-disk cache** (:class:`~repro.exec.cache.ResultCache`),
   keyed by workload, scale, config fingerprint, and schema version, so
   a warm re-run of the full suite costs milliseconds;
3. **fresh simulation** — in-process when ``ctx.jobs == 1``, fanned out
   over a :class:`~concurrent.futures.ProcessPoolExecutor` otherwise.

Determinism: fresh results are collected in job-submission order (never
``as_completed``), and *every* fresh result — serial or pooled — passes
through the same serialize/deserialize round trip the cache uses, so
counters are bit-exact across all three tiers by construction.

:data:`GLOBAL_STATS` accumulates over every engine in the process; the
CLI's end-of-suite summary and the CI warm-cache check ("zero fresh
simulations") read it.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.core.machine import Machine, RunResult
from repro.exec.cache import ResultCache
from repro.exec.context import RunContext
from repro.exec.jobs import Job, dedupe
from repro.exec.serialize import result_from_dict, result_to_dict
from repro.obs.export import build_manifest, write_manifest
from repro.obs.sampler import IntervalSampler
from repro.workloads.registry import get_workload, resolve_warmup

#: Process-wide result memo, shared by all engines (the figure modules'
#: ``run()`` functions hit it after the engine pre-ran their jobs).
_MEMO: dict[tuple, RunResult] = {}


def clear_memo() -> None:
    """Drop every memoized result (tests; the disk cache is untouched)."""
    _MEMO.clear()


@dataclass
class EngineStats:
    """Where results came from, for one engine or process-wide."""

    jobs_requested: int = 0    # jobs passed to run_jobs (pre-dedup)
    jobs_unique: int = 0       # after dedup
    memo_hits: int = 0         # served from the in-process memo
    cache_hits: int = 0        # rehydrated from the on-disk cache
    fresh_runs: int = 0        # actual simulations executed
    cache_stores: int = 0      # entries written to the on-disk cache

    def add(self, other: "EngineStats") -> None:
        for name in ("jobs_requested", "jobs_unique", "memo_hits",
                     "cache_hits", "fresh_runs", "cache_stores"):
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def summary(self) -> str:
        return (f"{self.fresh_runs} fresh, {self.cache_hits} from disk "
                f"cache, {self.memo_hits} memoized "
                f"({self.jobs_unique} unique of "
                f"{self.jobs_requested} requested)")


#: Accumulated over every engine in this process.
GLOBAL_STATS = EngineStats()


def _simulate(job: Job, obs: bool) -> dict:
    """Execute one job (worker-side): warmup, detailed run, serialize.

    Returns ``{"result": <dict>, "manifest": <dict | None>}`` — plain
    JSON-safe data, equally happy to cross a process boundary or land
    in the cache.
    """
    workload = get_workload(job.workload)
    machine = Machine(workload.build(job.scale), job.config)
    sampler = None
    if obs:
        sampler = IntervalSampler(window=job.config.obs.sampler_window)
        machine.add_probe(sampler)
        machine.enable_stall_attribution()
    machine.fast_forward(resolve_warmup(workload, job.scale))
    result = machine.run(max_insts=workload.window)
    manifest = None
    if sampler is not None:
        sampler.finish(machine)
        manifest = build_manifest(
            result, attribution=machine.attribution, sampler=sampler,
            workload=job.workload, scale=job.scale)
    return {"result": result_to_dict(result), "manifest": manifest}


class RunEngine:
    """Runs batches of jobs under one :class:`RunContext`."""

    def __init__(self, ctx: RunContext | None = None) -> None:
        self.ctx = ctx or RunContext()
        self.stats = EngineStats()
        self._cache = (ResultCache(self.ctx.cache_dir)
                       if self.ctx.cache_dir is not None else None)

    # ------------------------------------------------------------------ API

    def run_jobs(self, jobs: list[Job]) -> dict[tuple, RunResult]:
        """Run (or recall) every job; returns results keyed by
        :attr:`Job.key`.  Duplicate jobs are executed once."""
        unique = dedupe(jobs)
        self._bump(jobs_requested=len(jobs), jobs_unique=len(unique))

        results: dict[tuple, RunResult] = {}
        fresh: list[Job] = []
        for job in unique:
            result = self._recall(job)
            if result is not None:
                results[job.key] = result
            else:
                fresh.append(job)

        for job, payload in zip(fresh, self._execute(fresh)):
            results[job.key] = self._absorb(job, payload)
        return results

    def run(self, job: Job) -> RunResult:
        """Convenience single-job entry point."""
        return self.run_jobs([job])[job.key]

    # ------------------------------------------------------------- recall

    def _recall(self, job: Job) -> RunResult | None:
        """Serve a job from the memo or the disk cache, if allowed."""
        ctx = self.ctx
        if not ctx.use_cache or ctx.refresh:
            return None
        result = _MEMO.get(job.key)
        if result is not None:
            self._bump(memo_hits=1)
            return result
        if self._cache is None:
            return None
        entry = self._cache.load(job)
        if entry is None:
            return None
        if ctx.wants_obs and entry.get("manifest") is None:
            # Obs artifacts were requested but this entry was produced
            # without instrumentation: only a fresh run can supply them.
            return None
        result = result_from_dict(entry["result"], config=job.config)
        self._bump(cache_hits=1)
        _MEMO[job.key] = result
        if ctx.wants_obs:
            write_manifest(ctx.obs_dir, entry["manifest"], stem=job.stem())
        return result

    # ------------------------------------------------------------ execute

    def _execute(self, fresh: list[Job]) -> list[dict]:
        """Simulate every job in ``fresh``, payloads in job order."""
        ctx = self.ctx
        if not fresh:
            return []
        if ctx.jobs == 1 or len(fresh) == 1:
            return [_simulate(job, ctx.wants_obs) for job in fresh]
        workers = min(ctx.jobs, len(fresh))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_simulate, job, ctx.wants_obs)
                       for job in fresh]
            # Submission order, not completion order: merging stays
            # deterministic regardless of worker scheduling.
            return [future.result() for future in futures]

    def _absorb(self, job: Job, payload: dict) -> RunResult:
        """Rehydrate one fresh payload and feed every result tier."""
        ctx = self.ctx
        result = result_from_dict(payload["result"], config=job.config)
        self._bump(fresh_runs=1)
        if ctx.use_cache:
            _MEMO[job.key] = result
            if self._cache is not None:
                self._cache.store(job, payload["result"],
                                  manifest=payload["manifest"])
                self._bump(cache_stores=1)
        if ctx.wants_obs and payload["manifest"] is not None:
            write_manifest(ctx.obs_dir, payload["manifest"],
                           stem=job.stem())
        return result

    # -------------------------------------------------------------- stats

    def _bump(self, **deltas: int) -> None:
        for name, delta in deltas.items():
            setattr(self.stats, name, getattr(self.stats, name) + delta)
            setattr(GLOBAL_STATS, name,
                    getattr(GLOBAL_STATS, name) + delta)
