"""Simulation jobs: the unit of work the run engine schedules.

A :class:`Job` names one ``(workload, config, scale)`` simulation under
the paper's methodology (fast-forward warmup, then the detailed
window).  Jobs are hashable — the in-process memo keys on
:attr:`Job.key` — and carry a stable content fingerprint
(:meth:`Job.fingerprint`) that keys the persistent on-disk cache and
the obs manifest filenames.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import BASELINE, MachineConfig


@dataclass(frozen=True)
class Job:
    """One simulation to run (or fetch from a cache)."""

    workload: str
    config: MachineConfig = field(default_factory=lambda: BASELINE)
    scale: int = 1

    @property
    def key(self) -> tuple:
        """In-process memo key (hash-based; not stable across runs)."""
        return (self.workload, self.config, self.scale)

    def fingerprint(self) -> str:
        """Stable content key: workload name, scale, and the config's
        canonical digest — identical across processes and sessions."""
        return f"{self.workload}-x{self.scale}-{self.config.fingerprint()}"

    def stem(self) -> str:
        """Filename stem for this job's artifacts (cache entry, obs
        manifest): short enough for directories, still collision-safe."""
        return f"{self.workload}-{self.config.fingerprint()[:10]}-x{self.scale}"


def dedupe(jobs: list[Job]) -> list[Job]:
    """Distinct jobs in first-seen order (figures share runs — e.g.
    Figures 6 and 7 request the same baseline suite)."""
    seen: set[tuple] = set()
    unique: list[Job] = []
    for job in jobs:
        if job.key not in seen:
            seen.add(job.key)
            unique.append(job)
    return unique
