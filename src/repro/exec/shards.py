"""Sharded content-addressed result store (the service's shared CAS).

A :class:`ShardedResultCache` fans the flat
:class:`~repro.exec.cache.ResultCache` layout out across ``16**width``
shard directories, keyed by a prefix of the sha256 of the job's content
fingerprint::

    <root>/cas.json                 # layout marker (schema, shard width)
    <root>/<2-hex>/<stem>.json      # one flat ResultCache per shard
    <root>/<2-hex>/quarantine/...   # per-shard quarantine + sidecars

Each shard *is* a :class:`~repro.exec.cache.ResultCache`, so every
per-entry guarantee carries over unchanged: the embedded full
fingerprint, the integrity digest, atomic stores, and the
quarantine-with-reason path all behave exactly as in the flat layout —
the **entry bytes are identical**, only their directory differs, which
is why the layout change needs no :data:`~repro.exec.cache.SCHEMA`
bump.  The point of sharding is concurrent multi-tenant traffic: the
service's writers land in ``16**width`` independent directories instead
of one, and a wedged or quarantined shard never blocks its neighbors.

The layout marker makes the directory self-describing: opening an
existing root with a different shard width raises
:class:`CasLayoutError` instead of silently splitting the store in two.
A flat cache directory is not a CAS root and vice versa — the marker
is how the two layouts refuse to be confused.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Callable

from repro.exec.cache import SCHEMA, ResultCache
from repro.exec.jobs import Job

#: CAS directory-layout schema (independent of the entry schema — the
#: entries themselves stay bit-identical to the flat layout's).
CAS_SCHEMA = "repro-cas/1"

#: Name of the layout marker file at the CAS root.
MARKER = "cas.json"

#: Default shard-prefix width in hex characters (2 -> 256 shards).
DEFAULT_WIDTH = 2


class CasLayoutError(RuntimeError):
    """An existing CAS root disagrees with the requested layout."""


def shard_key(fingerprint: str, width: int = DEFAULT_WIDTH) -> str:
    """Shard directory name for a job fingerprint: the first ``width``
    hex chars of its sha256 (the fingerprint embeds the workload name,
    so the raw prefix would skew — hashing makes the fan-out uniform).
    """
    digest = hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()
    return digest[:width]


class ShardedResultCache:
    """A :class:`~repro.exec.cache.ResultCache`-compatible store that
    fans entries out by fingerprint-prefix shard.

    Drop-in for the engine: same constructor shape, same
    ``load`` / ``store`` / ``path`` / ``entries`` / ``quarantined``
    surface, same ``on_quarantine(path, reason)`` callback (fired by
    whichever shard quarantined the entry).
    """

    def __init__(self, directory: str | Path,
                 on_quarantine: Callable[[Path, str], None] | None = None,
                 width: int = DEFAULT_WIDTH) -> None:
        if not 1 <= width <= 8:
            raise ValueError("shard width must be between 1 and 8 hex "
                             f"chars, got {width}")
        self.directory = Path(directory)
        self.on_quarantine = on_quarantine
        self.width = width
        self._shards: dict[str, ResultCache] = {}
        #: guards the shard memo: the service's worker threads and its
        #: admission path open shards concurrently.
        self._lock = threading.Lock()
        self._verify_or_adopt_marker()

    # ---------------------------------------------------------- layout

    def _verify_or_adopt_marker(self) -> None:
        marker = self.directory / MARKER
        if not marker.exists():
            return                      # written lazily on first store
        try:
            data = json.loads(marker.read_text(encoding="utf-8"))
        except (OSError, ValueError) as err:
            raise CasLayoutError(f"unreadable CAS marker {marker}: {err}")
        if data.get("schema") != CAS_SCHEMA:
            raise CasLayoutError(
                f"{self.directory} carries CAS schema "
                f"{data.get('schema')!r}, this build speaks {CAS_SCHEMA!r}")
        if data.get("shard_width") != self.width:
            raise CasLayoutError(
                f"{self.directory} was laid out with shard width "
                f"{data.get('shard_width')}, opened with {self.width}")

    def _write_marker(self) -> None:
        marker = self.directory / MARKER
        if marker.exists():
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        marker.write_text(json.dumps({
            "schema": CAS_SCHEMA,
            "shard_width": self.width,
            "entry_schema": SCHEMA,
        }, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    def shard_of(self, job: Job) -> str:
        return shard_key(job.fingerprint(), self.width)

    def shard(self, prefix: str) -> ResultCache:
        """The (memoized) flat cache backing one shard directory
        (thread-safe: concurrent readers share one instance)."""
        with self._lock:
            cache = self._shards.get(prefix)
            if cache is None:
                cache = ResultCache(self.directory / prefix,
                                    on_quarantine=self.on_quarantine)
                self._shards[prefix] = cache
            return cache

    def shards(self) -> list[Path]:
        """Every shard directory currently on disk."""
        if not self.directory.is_dir():
            return []
        return [p for p in sorted(self.directory.iterdir())
                if p.is_dir() and len(p.name) == self.width
                and all(c in "0123456789abcdef" for c in p.name)]

    # ----------------------------------------------- ResultCache surface

    def path(self, job: Job) -> Path:
        return self.shard(self.shard_of(job)).path(job)

    def load(self, job: Job) -> dict | None:
        return self.shard(self.shard_of(job)).load(job)

    def store(self, job: Job, result: dict,
              manifest: dict | None = None) -> Path:
        self._write_marker()
        return self.shard(self.shard_of(job)).store(job, result,
                                                    manifest=manifest)

    def load_by_fingerprint(self, fingerprint: str) -> dict | None:
        """Look an entry up by full job fingerprint alone (the service's
        GET-result path, where no :class:`Job` object exists).  Scans
        only the one shard the fingerprint hashes to; every candidate
        goes through the shard's verified read, so corruption found on
        this path quarantines exactly as on the job path."""
        shard = self.shard(shard_key(fingerprint, self.width))
        for path in shard.entries():
            entry = shard.load_entry(path)
            if entry is not None and entry.get("fingerprint") == fingerprint:
                return entry
        return None

    def entries(self) -> list[Path]:
        return [entry for shard_dir in self.shards()
                for entry in self.shard(shard_dir.name).entries()]

    def quarantined(self) -> list[Path]:
        return [entry for shard_dir in self.shards()
                for entry in self.shard(shard_dir.name).quarantined()]
