"""Shared run-engine command-line flags.

Every CLI that can touch the run engine — ``repro-experiments``,
``repro-obs``, ``repro-chaos``, ``repro-equivalence``, ``repro-serve``
— accepts the *same* engine knobs with the *same* documentation,
declared once here and turned into the same typed
:class:`~repro.exec.context.RunContext` by :func:`context_from_args`.
A flag behaving differently across tools (or existing on one and not
another) is a bug in this module, not a per-tool quirk.

Usage::

    parser = argparse.ArgumentParser(...)
    add_engine_arguments(parser)
    args = parser.parse_args(argv)
    ctx = context_from_args(args, obs_dir=...)   # overrides win
"""

from __future__ import annotations

import argparse

from repro.exec.context import BACKENDS, CACHE_LAYOUTS, RunContext


def add_engine_arguments(parser: argparse.ArgumentParser,
                         ) -> argparse._ArgumentGroup:
    """Attach the shared engine flag group to ``parser``; returns the
    group so callers can append tool-specific execution flags to it."""
    group = parser.add_argument_group(
        "run engine",
        "execution policy shared by every repro CLI (one typed "
        "RunContext behind identical flags)")
    group.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for fresh simulations "
                            "(default 1 = serial; results are "
                            "bit-exact either way)")
    group.add_argument("--backend", default="reference",
                       choices=BACKENDS,
                       help="simulation backend: the reference "
                            "cycle-level machine (default), the "
                            "two-phase fast backend (bit-exact by "
                            "contract; obs runs fall back to the "
                            "reference), or 'both' — run the two and "
                            "fail on any counter divergence")
    group.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent result cache directory; warm "
                            "reruns skip simulation entirely")
    group.add_argument("--cache-layout", default="flat",
                       choices=CACHE_LAYOUTS,
                       help="on-disk layout under --cache-dir: 'flat' "
                            "(one directory of entries, the CLI "
                            "default) or 'cas' (the sharded "
                            "content-addressed store repro-serve "
                            "uses; entry bytes are identical)")
    group.add_argument("--no-cache", action="store_true",
                       help="bypass every result cache tier (forces "
                            "fresh simulation, stores nothing)")
    group.add_argument("--refresh", action="store_true",
                       help="ignore existing cache entries and "
                            "overwrite them with fresh runs")
    group.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job wall-clock timeout (pooled mode "
                            "only; a hung worker is killed and the "
                            "job retried)")
    group.add_argument("--retries", type=int, default=2, metavar="N",
                       help="re-attempts per failed job before giving "
                            "up on it (default 2)")
    group.add_argument("--no-memo", action="store_true",
                       help="disable proof-carrying block memoization "
                            "in the fast backend (escape hatch; "
                            "results are bit-identical either way, "
                            "only wall-clock changes)")
    return group


def validate_engine_args(parser: argparse.ArgumentParser,
                         args: argparse.Namespace) -> None:
    """Uniform early validation with uniform error text."""
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.timeout is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")


def context_from_args(args: argparse.Namespace,
                      **overrides) -> RunContext:
    """The :class:`RunContext` the shared flags describe.  Keyword
    ``overrides`` (e.g. ``obs_dir=...``, ``faults=...``) win over the
    flag-derived fields."""
    fields = dict(
        backend=args.backend,
        cache_dir=args.cache_dir,
        cache_layout=args.cache_layout,
        use_cache=not args.no_cache,
        refresh=args.refresh,
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        memo=not args.no_memo,
    )
    fields.update(overrides)
    return RunContext(**fields)
