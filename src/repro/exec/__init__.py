"""Parallel run engine with a persistent result cache.

The unit of work is a :class:`~repro.exec.jobs.Job` — one
``(workload, config, scale)`` simulation.  A
:class:`~repro.exec.engine.RunEngine` runs batches of jobs under a
:class:`~repro.exec.context.RunContext` (obs directory, cache policy,
worker count), deduplicating shared jobs, fanning fresh simulations out
over a process pool, and backing everything with an on-disk
:class:`~repro.exec.cache.ResultCache` keyed by workload, scale, the
config's stable fingerprint, and a schema version.

All three result tiers (in-process memo, disk cache, fresh simulation
— serial or pooled) produce bit-exact identical counters: every fresh
result passes through the same lossless serialize/deserialize round
trip the cache uses.
"""

from repro.exec.cache import SCHEMA as CACHE_SCHEMA
from repro.exec.cache import ResultCache
from repro.exec.cli import (
    add_engine_arguments,
    context_from_args,
    validate_engine_args,
)
from repro.exec.context import RunContext
from repro.exec.engine import (
    GLOBAL_STATS,
    EngineStats,
    RunEngine,
    clear_memo,
)
from repro.exec.jobs import Job, dedupe
from repro.exec.serialize import result_from_dict, result_to_dict
from repro.exec.shards import CAS_SCHEMA, CasLayoutError, ShardedResultCache

__all__ = [
    "CACHE_SCHEMA",
    "CAS_SCHEMA",
    "CasLayoutError",
    "EngineStats",
    "GLOBAL_STATS",
    "Job",
    "ResultCache",
    "RunContext",
    "RunEngine",
    "ShardedResultCache",
    "add_engine_arguments",
    "clear_memo",
    "context_from_args",
    "dedupe",
    "result_from_dict",
    "result_to_dict",
    "validate_engine_args",
]
