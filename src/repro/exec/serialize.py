"""Lossless (de)serialization of :class:`~repro.core.machine.RunResult`.

The run engine moves results across two boundaries — worker process to
parent, and disk cache to a later session — through one dict form, so
a result is bit-exact no matter which path produced it: every counter
is an int, and floats survive JSON via ``repr`` round-tripping.

The machine configuration is *not* embedded: the caller always knows
the :class:`~repro.exec.jobs.Job` it asked for, and the cache key
already commits to the config fingerprint, so rehydration reattaches
the caller's config object (`result_from_dict(..., config=job.config)`).
"""

from __future__ import annotations

from repro.core.config import MachineConfig
from repro.core.machine import RunResult
from repro.power.accounting import PowerReport
from repro.stats.counters import CoreStats
from repro.stats.fluctuation import FluctuationTracker
from repro.stats.widths import WidthHistogram


def result_to_dict(result: RunResult) -> dict:
    """Flatten a run result to a JSON-safe dict (config excluded)."""
    return {
        "name": result.name,
        "stats": result.stats.as_dict(),
        "widths": result.widths.as_dict(),
        "fluctuation": result.fluctuation.as_dict(),
        "power": result.power.as_dict() if result.power else None,
    }


def dict_divergences(a: dict, b: dict, prefix: str = "") -> list[str]:
    """Dotted paths at which two serialized results differ.

    The backend-equivalence machinery (``--backend both``, the
    ``backend-equivalence`` CI matrix) reports *where* two results
    disagree, not just that they do; a leaf differing in value or
    present on only one side contributes its path.
    """
    paths: list[str] = []
    for key in sorted(set(a) | set(b), key=str):
        left = a.get(key)
        right = b.get(key)
        where = f"{prefix}{key}"
        if isinstance(left, dict) and isinstance(right, dict):
            paths.extend(dict_divergences(left, right, where + "."))
        elif left != right:
            paths.append(where)
    return paths


def result_from_dict(data: dict, config: MachineConfig) -> RunResult:
    """Rebuild a run result from :func:`result_to_dict` output,
    reattaching the configuration the job was keyed on."""
    power = data.get("power")
    return RunResult(
        name=data["name"],
        config=config,
        stats=CoreStats.from_dict(data["stats"]),
        widths=WidthHistogram.from_dict(data["widths"]),
        fluctuation=FluctuationTracker.from_dict(data["fluctuation"]),
        power=PowerReport.from_dict(power) if power is not None else None,
    )
