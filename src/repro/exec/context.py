"""Run context: everything about *how* to run that is not the job.

The obs directory, cache policy, and parallelism travel explicitly as
a :class:`RunContext` through
:func:`repro.experiments.base.run_workload` and the
:class:`~repro.exec.engine.RunEngine` — never as module-global state.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path


#: Valid simulation backends (see :attr:`RunContext.backend`).
BACKENDS = ("reference", "fast", "both")

#: Valid on-disk cache layouts (see :attr:`RunContext.cache_layout`).
CACHE_LAYOUTS = ("flat", "cas")


@dataclass(frozen=True)
class RunContext:
    """Execution policy for a batch of simulation jobs."""

    #: directory for obs run manifests (None = no obs instrumentation).
    obs_dir: Path | None = None
    #: simulation backend: ``"reference"`` (the cycle-level
    #: :class:`~repro.core.machine.Machine`), ``"fast"`` (the two-phase
    #: :class:`~repro.fastsim.machine.FastMachine`; falls back to the
    #: reference when obs instrumentation is requested, since probes
    #: only exist there), or ``"both"`` — run the two back to back and
    #: raise :class:`~repro.exec.engine.BackendDivergence` unless the
    #: serialized results are identical.  ``"both"`` never recalls from
    #: a cache tier: a recalled result would skip the cross-check.
    backend: str = "reference"
    #: directory for the persistent result cache (None = memory only).
    cache_dir: Path | None = None
    #: on-disk layout under ``cache_dir``: ``"flat"`` (one directory of
    #: entries — the CLI default) or ``"cas"`` (the sharded
    #: content-addressed store, :class:`~repro.exec.shards.
    #: ShardedResultCache` — what ``repro-serve`` uses so concurrent
    #: tenants fan out across shards).  Entry bytes are identical in
    #: both layouts; only the directory structure differs.
    cache_layout: str = "flat"
    #: consult/populate the in-process memo and the on-disk cache.
    use_cache: bool = True
    #: ignore existing cache entries and overwrite them with fresh runs.
    refresh: bool = False
    #: worker processes for fresh simulations (1 = run in-process).
    jobs: int = 1
    #: per-job wall-clock timeout in seconds (None = wait forever).
    #: Enforced only in pooled mode (``jobs > 1``): an in-process run
    #: cannot be preempted.
    timeout: float | None = None
    #: re-attempts per job after the first failed try.
    retries: int = 2
    #: base backoff before the first retry, in seconds (grows
    #: exponentially with deterministic jitter; see
    #: :class:`repro.robust.retry.RetryPolicy`).
    backoff: float = 0.05
    #: fault tokens for the chaos harness, as ``(workload, token)``
    #: pairs — the matching worker applies the fault before simulating
    #: (:mod:`repro.robust.faults`).  Dicts are accepted and frozen.
    faults: tuple[tuple[str, str], ...] = ()
    #: proof-carrying block memoization in the fast backend
    #: (:mod:`repro.fastsim.blockcache`).  ``--no-memo`` is the escape
    #: hatch: results are bit-identical either way (CI-enforced), only
    #: wall-clock changes.  Ignored by the reference backend.
    memo: bool = True

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {self.backend!r}")
        if self.cache_layout not in CACHE_LAYOUTS:
            raise ValueError(f"cache_layout must be one of "
                             f"{CACHE_LAYOUTS}, got {self.cache_layout!r}")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if isinstance(self.faults, dict):
            object.__setattr__(self, "faults",
                               tuple(sorted(self.faults.items())))
        else:
            object.__setattr__(self, "faults", tuple(
                (str(w), str(t)) for w, t in self.faults))
        # Accept plain strings for the directories.
        if self.obs_dir is not None and not isinstance(self.obs_dir, Path):
            object.__setattr__(self, "obs_dir", Path(self.obs_dir))
        if (self.cache_dir is not None
                and not isinstance(self.cache_dir, Path)):
            object.__setattr__(self, "cache_dir", Path(self.cache_dir))

    @property
    def wants_obs(self) -> bool:
        return self.obs_dir is not None

    def fault_for(self, workload: str) -> str | None:
        """The injected-fault token for a workload, if any."""
        for name, token in self.faults:
            if name == workload:
                return token
        return None
