"""Persistent on-disk result cache.

Each entry is one JSON file holding the serialized run result plus the
obs manifest of the run that produced it (when obs was attached), under
a content key::

    <cache_dir>/<workload>-<config_fp[:10]>-x<scale>.json

Invalidation is by construction, not by mtime:

* the entry embeds the **full** job fingerprint (workload, scale, and
  the config's canonical sha256 digest) and is rejected on mismatch —
  a truncated-digest filename collision therefore cannot serve wrong
  results;
* the entry embeds :data:`SCHEMA`; entries written by an older layout
  are rejected (and overwritten on the next store);
* the entry embeds an **integrity digest** — sha256 over the canonical
  JSON of everything else in the entry — so corruption that still
  parses (a flipped bit inside a counter literal) is caught, not
  served as plausible-but-wrong numbers.

Corrupt entries are **quarantined**, never silently treated as misses:
the damaged file moves to ``<cache_dir>/quarantine/`` next to a
``<name>.reason.json`` sidecar recording what was wrong with it, a
one-line warning is logged, and the configured ``on_quarantine``
callback fires (the run engine counts these in
:class:`~repro.exec.engine.EngineStats.cache_quarantined`).  The job
then re-simulates fresh — a damaged cache degrades to fresh
simulation, never to a crash *and never invisibly*.

Stale-but-well-formed entries (an older :data:`SCHEMA`, a fingerprint
from a different config) are ordinary misses, not corruption: they are
left in place to be overwritten by the next store.

Stores are atomic (write-to-temp + ``os.replace``) so a killed run
cannot leave a half-written entry behind.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Callable

from repro.exec.jobs import Job

#: Cache entry schema (bump on any breaking change to the serialized
#: result layout — old entries then read as misses).  ``/2`` added the
#: integrity digest; ``/3`` marks the fast-backend era — entries may
#: now have been produced by either backend (bit-exact by contract,
#: but pre-fast-backend entries predate the contract's enforcement).
SCHEMA = "repro-exec/3"

#: Schema prefix identifying any well-formed entry of this cache,
#: current or stale — anything else claiming to be an entry is corrupt.
_SCHEMA_PREFIX = "repro-exec/"

QUARANTINE_DIR = "quarantine"

logger = logging.getLogger(__name__)


def integrity_digest(entry: dict) -> str:
    """sha256 over the canonical JSON of an entry, minus the digest
    field itself."""
    body = {k: v for k, v in entry.items() if k != "integrity"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CorruptEntry(Exception):
    """A cache file exists but cannot be trusted (internal signal)."""

    def __init__(self, reason: str, error: str | None = None) -> None:
        self.reason = reason
        self.error = error
        super().__init__(reason)


class ResultCache:
    """Directory of serialized run results, keyed by job content.

    ``on_quarantine(path, reason)`` — optional callback fired after a
    corrupt entry has been moved into the quarantine directory.
    """

    def __init__(self, directory: str | Path,
                 on_quarantine: Callable[[Path, str], None] | None = None,
                 ) -> None:
        self.directory = Path(directory)
        self.on_quarantine = on_quarantine

    def path(self, job: Job) -> Path:
        return self.directory / f"{job.stem()}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.directory / QUARANTINE_DIR

    # ----------------------------------------------------------------- load

    def load(self, job: Job) -> dict | None:
        """The stored payload for ``job``, or None on any kind of miss.

        Misses split two ways: *stale* entries (absent, older schema,
        fingerprint mismatch) are plain misses; *corrupt* entries
        (unparseable, wrong shape, integrity mismatch) are quarantined
        first — see :meth:`quarantine`.
        """
        path = self.path(job)
        if not path.exists():
            return None
        entry = self.load_entry(path)
        if entry is None:
            return None
        if entry.get("fingerprint") != job.fingerprint():
            return None     # stale: a different config, not corruption
        return entry

    def load_entry(self, path: Path) -> dict | None:
        """Verified read of one entry file: schema and integrity are
        checked exactly as :meth:`load` does, corruption is quarantined
        the same way.  Returns None for stale or quarantined entries.
        The service's fingerprint-indexed lookups use this so a result
        served by fingerprint gets the same trust path as one served by
        job."""
        try:
            entry = self._read(path)
        except CorruptEntry as corrupt:
            self.quarantine(path, corrupt.reason, error=corrupt.error)
            return None
        return entry

    def _read(self, path: Path) -> dict | None:
        """Parse and verify one entry file.

        Returns the entry, or None for a *stale* (old-schema) entry;
        raises :class:`CorruptEntry` for anything untrustworthy.
        """
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as err:
            raise CorruptEntry("unreadable entry file", error=str(err))
        except UnicodeDecodeError as err:
            # A flipped bit can break UTF-8 itself, upstream of the
            # JSON parse — still corruption, still quarantined.
            raise CorruptEntry("entry is not valid UTF-8",
                               error=str(err))
        try:
            entry = json.loads(text)
        except ValueError as err:
            raise CorruptEntry("entry is not valid JSON", error=str(err))
        if not isinstance(entry, dict):
            raise CorruptEntry("entry is not a JSON object")
        schema = entry.get("schema")
        if not isinstance(schema, str) or not schema.startswith(
                _SCHEMA_PREFIX):
            raise CorruptEntry(f"unrecognized schema tag {schema!r}")
        if schema != SCHEMA:
            return None     # stale layout: plain miss, overwritten later
        if "result" not in entry:
            raise CorruptEntry("entry is missing its result payload")
        stored = entry.get("integrity")
        actual = integrity_digest(entry)
        if stored != actual:
            raise CorruptEntry(
                "integrity digest mismatch",
                error=f"stored {str(stored)[:16]}..., "
                      f"recomputed {actual[:16]}...")
        return entry

    # ----------------------------------------------------------- quarantine

    def quarantine(self, path: Path, reason: str,
                   error: str | None = None) -> Path:
        """Move a corrupt entry aside (with a structured reason file)
        instead of silently treating it as a miss."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        dest = self.quarantine_dir / path.name
        suffix = 0
        while dest.exists():
            suffix += 1
            dest = self.quarantine_dir / f"{path.name}.{suffix}"
        try:
            os.replace(path, dest)
        except FileNotFoundError:
            # Two concurrent readers found the same corrupt entry; the
            # other one already moved it.  Its quarantine (and reason
            # file) stand — nothing left for this thread to do.
            return dest
        reason_record = {
            "entry": path.name,
            "quarantined_as": dest.name,
            "reason": reason,
            "error": error,
            "schema_expected": SCHEMA,
        }
        reason_path = dest.with_name(dest.name + ".reason.json")
        reason_path.write_text(
            json.dumps(reason_record, sort_keys=True, indent=2) + "\n",
            encoding="utf-8")
        logger.warning("cache entry %s quarantined to %s: %s%s",
                       path, dest, reason,
                       f" ({error})" if error else "")
        if self.on_quarantine is not None:
            self.on_quarantine(dest, reason)
        return dest

    def quarantined(self) -> list[Path]:
        """Every quarantined entry file (reason sidecars excluded)."""
        if not self.quarantine_dir.is_dir():
            return []
        return [p for p in sorted(self.quarantine_dir.iterdir())
                if not p.name.endswith(".reason.json")]

    # ---------------------------------------------------------------- store

    def store(self, job: Job, result: dict,
              manifest: dict | None = None) -> Path:
        """Atomically persist one job's serialized result (+ manifest)."""
        entry = {
            "schema": SCHEMA,
            "workload": job.workload,
            "scale": job.scale,
            "fingerprint": job.fingerprint(),
            "result": result,
            "manifest": manifest,
        }
        entry["integrity"] = integrity_digest(entry)
        path = self.path(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(entry, sort_keys=True) + "\n",
                       encoding="utf-8")
        os.replace(tmp, path)
        return path

    def entries(self) -> list[Path]:
        """Every entry file currently in the cache directory
        (quarantined files live in a subdirectory and are excluded)."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.json"))
