"""Persistent on-disk result cache.

Each entry is one JSON file holding the serialized run result plus the
obs manifest of the run that produced it (when obs was attached), under
a content key::

    <cache_dir>/<workload>-<config_fp[:10]>-x<scale>.json

Invalidation is by construction, not by mtime:

* the entry embeds the **full** job fingerprint (workload, scale, and
  the config's canonical sha256 digest) and is rejected on mismatch —
  a truncated-digest filename collision therefore cannot serve wrong
  results;
* the entry embeds :data:`SCHEMA`; entries written by an older layout
  are rejected (and overwritten on the next store);
* unreadable or structurally corrupt entries are treated as misses —
  a damaged cache degrades to fresh simulation, never to a crash.

Stores are atomic (write-to-temp + ``os.replace``) so a killed run
cannot leave a half-written entry behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.exec.jobs import Job

#: Cache entry schema (bump on any breaking change to the serialized
#: result layout — old entries then read as misses).
SCHEMA = "repro-exec/1"


class ResultCache:
    """Directory of serialized run results, keyed by job content."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def path(self, job: Job) -> Path:
        return self.directory / f"{job.stem()}.json"

    def load(self, job: Job) -> dict | None:
        """The stored payload for ``job``, or None on any kind of miss
        (absent, unreadable, wrong schema, fingerprint mismatch)."""
        path = self.path(job)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("schema") != SCHEMA:
            return None
        if entry.get("fingerprint") != job.fingerprint():
            return None
        if "result" not in entry:
            return None
        return entry

    def store(self, job: Job, result: dict,
              manifest: dict | None = None) -> Path:
        """Atomically persist one job's serialized result (+ manifest)."""
        entry = {
            "schema": SCHEMA,
            "workload": job.workload,
            "scale": job.scale,
            "fingerprint": job.fingerprint(),
            "result": result,
            "manifest": manifest,
        }
        path = self.path(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(entry, sort_keys=True) + "\n",
                       encoding="utf-8")
        os.replace(tmp, path)
        return path

    def entries(self) -> list[Path]:
        """Every entry file currently in the cache directory."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.json"))
