"""Operation packing decision logic (paper Section 5).

The issue stage consults this module to merge ready narrow-width
operations into a shared 64-bit ALU, "akin to dynamically generating
multimedia instructions" (Section 5.1).  The three paper rules for a
pack member (Section 5.2):

1. data dependencies satisfied and ready to issue (checked by issue),
2. both operands <= 16 bits (the RUU width tags),
3. same operation as the rest of the pack.

*Replay packing* (Section 5.3) relaxes rule 2: an operation with one
narrow and one wide operand may pack speculatively; if the 16-bit lane
overflows into the wide operand's upper bits the instruction is
squashed and re-issued full-width via a replay trap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PackingConfig
from repro.core.ruu import RUUEntry
from repro.isa.opcodes import PACKABLE_CLASSES, OpClass, Opcode

#: Operations eligible for replay packing.  The paper restricts the
#: speculation to arithmetic where "in most arithmetic operations only
#: the lower bits of the result will change" — add/subtract flavours.
#: Logic/shift results do not pass the wide operand's upper bits
#: through, so speculating on them would be wrong, not just slow.
REPLAY_OPS = frozenset(
    {Opcode.ADDQ, Opcode.SUBQ, Opcode.ADDL, Opcode.SUBL, Opcode.LDA}
)

_HIGH48_SHIFT = 16


def static_pack_candidate(op_class: OpClass, opcode: Opcode,
                          a_may_narrow16: bool,
                          b_may_narrow16: bool) -> tuple[bool, bool]:
    """Static analogue of the issue-time candidate rules, used by the
    width analyzer (:mod:`repro.analysis`) to upper-bound packing.

    Returns ``(full_possible, replay_possible)``:

    * *full*: the operation could ever satisfy rule 2 (both operands
      narrow at 16) — requires a packable class and that *neither*
      operand is statically provably wide;
    * *replay*: the operation could ever be a Section 5.3 replay
      candidate — an add/sub flavour with at least one possibly-narrow
      operand.

    Soundness: a dynamically-narrow operand value is, by the interval
    analysis' soundness, inside its static interval, so "tagged narrow
    at runtime" implies "may be narrow statically".  Hence every
    dynamic candidate is a static candidate and the static count is an
    upper bound on issue-time packing opportunities.
    """
    full = (op_class in PACKABLE_CLASSES
            and a_may_narrow16 and b_may_narrow16)
    replay = (opcode in REPLAY_OPS
              and (a_may_narrow16 or b_may_narrow16))
    return full, replay


def vector_pack_candidates(op_class_codes, opcode_codes, tag_a_codes,
                           tag_b_codes, config: PackingConfig):
    """Vectorized twin of the issue-time candidate rules (trace replay).

    Takes columns of OpClass/Opcode codes (positions into
    ``list(OpClass)`` / ``list(Opcode)``) and integer tag codes, and
    returns boolean arrays ``(full, replay)`` mirroring
    :func:`is_full_pack_candidate` / :func:`is_replay_pack_candidate`
    minus the dynamic ``no_pack`` bit (which only the timing loop
    knows).  Since ``no_pack`` only ever *removes* eligibility, every
    operation the timing loop packed must test True here — the fast
    backend asserts exactly that over the captured trace.
    """
    import numpy as np

    class_order = list(OpClass)
    opcode_order = list(Opcode)
    packable = np.asarray(
        [c in PACKABLE_CLASSES for c in class_order], dtype=bool)
    replayable = np.asarray(
        [op in REPLAY_OPS for op in opcode_order], dtype=bool)
    cls_codes = np.asarray(op_class_codes, dtype=np.int64)
    opc_codes = np.asarray(opcode_codes, dtype=np.int64)
    a_narrow = np.asarray(tag_a_codes) == 2   # TAG_NARROW16
    b_narrow = np.asarray(tag_b_codes) == 2
    full = packable[cls_codes] & a_narrow & b_narrow
    if config.replay:
        replay = replayable[opc_codes] & (a_narrow != b_narrow)
    else:
        replay = np.zeros(cls_codes.shape, dtype=bool)
    return full, replay


@dataclass
class OpenPack:
    """A partially filled ALU pack being assembled this issue cycle."""

    key: object                  # opcode (or op class) shared by members
    lanes_left: int              # free 16-bit subword lanes
    has_wide: bool = False       # a replay member occupies the upper bits
    wide_leader: bool = False    # the pack was *opened* by a wide op and
    #                              becomes speculative only if joined
    members: list[RUUEntry] = field(default_factory=list)


def pack_key(entry: RUUEntry, config: PackingConfig) -> object:
    """Grouping key: the paper requires members to 'perform the same
    operation' — identical opcodes by default, same class if relaxed."""
    if config.same_opcode:
        return entry.dyn.inst.opcode
    return entry.dyn.op_class


def is_full_pack_candidate(entry: RUUEntry) -> bool:
    """Rule 2+3 precheck: packable class and both operands narrow."""
    if entry.no_pack or entry.dyn.op_class not in PACKABLE_CLASSES:
        return False
    return entry.dyn.pair_narrow16


def is_replay_pack_candidate(entry: RUUEntry,
                             config: PackingConfig) -> bool:
    """Section 5.3 candidate: add/sub with exactly one narrow operand."""
    if not config.replay or entry.no_pack:
        return False
    if entry.dyn.inst.opcode not in REPLAY_OPS:
        return False
    return entry.dyn.tag_a.narrow16 != entry.dyn.tag_b.narrow16


def replay_overflows(entry: RUUEntry) -> bool:
    """Did the speculatively packed operation carry into the upper bits?

    The pack hardware computes the low 16 bits in a lane and muxes the
    wide operand's upper 48 bits onto the result bus; the speculation
    fails exactly when the true result's upper 48 bits differ from the
    wide operand's (Section 5.3: "in the rare cases that there is
    overflow from the 16-bit addition, the instruction can be squashed
    and subsequently re-issued").
    """
    dyn = entry.dyn
    wide = dyn.b_val if dyn.tag_a.narrow16 else dyn.a_val
    result = dyn.result if dyn.result is not None else 0
    return (result >> _HIGH48_SHIFT) != (wide >> _HIGH48_SHIFT)


def try_join(packs: dict[object, OpenPack], entry: RUUEntry,
             config: PackingConfig) -> tuple[OpenPack | None, bool]:
    """Try to place ``entry`` into an open pack.

    Returns ``(pack, is_replay_member)``; ``pack`` is None when the
    entry cannot join any pack open this cycle.
    """
    key = pack_key(entry, config)
    pack = packs.get(key)
    if pack is None or pack.lanes_left <= 0:
        return None, False
    if is_full_pack_candidate(entry):
        pack.lanes_left -= 1
        pack.members.append(entry)
        return pack, False
    if not pack.has_wide and is_replay_pack_candidate(entry, config):
        # The wide operand's upper bits occupy the rest of the ALU, so
        # only one replay member fits and it closes the pack.
        pack.has_wide = True
        pack.lanes_left = 0
        pack.members.append(entry)
        return pack, True
    return None, False


def open_pack(packs: dict[object, OpenPack], entry: RUUEntry,
              config: PackingConfig) -> OpenPack | None:
    """Open a new pack seeded by ``entry`` (which issued normally).

    A narrow operation opens a pack with ``max_subwords - 1`` free
    lanes.  With replay packing enabled, a *wide* replay candidate may
    also open a pack: its upper bits occupy the mux path, leaving
    exactly one low lane for a narrow companion — the speculation (and
    possible replay trap) is only engaged if a companion actually
    joins.
    """
    key = pack_key(entry, config)
    if is_full_pack_candidate(entry):
        pack = OpenPack(key=key, lanes_left=config.max_subwords - 1,
                        members=[entry])
    elif is_replay_pack_candidate(entry, config):
        pack = OpenPack(key=key, lanes_left=1, has_wide=True,
                        wide_leader=True, members=[entry])
    else:
        return None
    packs[key] = pack
    return pack
