"""Issue-time operation packing (paper Section 5, Figures 8-9)."""

from repro.packing.pack import (
    REPLAY_OPS,
    OpenPack,
    is_full_pack_candidate,
    is_replay_pack_candidate,
    open_pack,
    pack_key,
    replay_overflows,
    try_join,
)

__all__ = [
    "OpenPack",
    "REPLAY_OPS",
    "is_full_pack_candidate",
    "is_replay_pack_candidate",
    "open_pack",
    "pack_key",
    "replay_overflows",
    "try_join",
]
