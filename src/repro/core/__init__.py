"""Out-of-order core: configuration, functional feed, RUU, timing machine."""

from repro.core.config import BASELINE, MachineConfig, PackingConfig
from repro.core.feed import DynInst, Feed
from repro.core.machine import Machine, RunResult
from repro.core.ruu import RUU, RUUEntry
from repro.core.trace import PipelineTracer, program_listing, render_trace

__all__ = [
    "BASELINE",
    "DynInst",
    "Feed",
    "Machine",
    "MachineConfig",
    "PackingConfig",
    "PipelineTracer",
    "RUU",
    "RUUEntry",
    "RunResult",
    "program_listing",
    "render_trace",
]
