"""The out-of-order timing machine (SimpleScalar ``sim-outorder`` style).

Each cycle runs the pipeline stages in reverse order — commit,
writeback, issue, dispatch, fetch — so that information flows one stage
per cycle, exactly as SimpleScalar's main loop does:

* **fetch** pulls functionally executed :class:`~repro.core.feed.DynInst`
  records from the feed through the I-cache into the fetch queue,
  breaking on predicted-taken branches;
* **dispatch** renames them into the RUU/LSQ, linking register and
  memory dependences;
* **issue** selects ready instructions oldest-first up to the issue
  width and functional-unit limits — and, when enabled, *packs* narrow
  operations into shared ALUs (Section 5);
* **writeback** completes instructions, resolves mispredicted branches
  (squash + recovery + Table 1's 2-cycle penalty), and detects replay
  traps for speculatively packed wide operations (Section 5.3);
* **commit** retires in order, sending stores to the D-cache.

The machine also hosts the measurement instruments: the width histogram
(Figures 1/4/5), the fluctuation tracker (Figure 2), and the power
accountant (Figures 6/7), all sampled at issue time — when operations
actually exercise functional units, wrong path included.

Observability hooks (:mod:`repro.obs`) ride on top of the timing model
without perturbing it:

* a **pipeline event bus** — :meth:`Machine.subscribe` registers a
  callable that receives typed events (fetch, icache_miss, dispatch,
  issue, pack_join, replay_trap, mispredict_recover, complete, commit,
  squash).  Every emission site is guarded by ``if self._subscribers:``
  so an unobserved machine allocates no event objects;
* **per-cycle probes** — :meth:`Machine.add_probe` objects get
  ``on_cycle(machine)`` after each simulated cycle (interval sampler);
* **stall attribution** — :meth:`Machine.enable_stall_attribution`
  makes the issue stage classify every unused issue slot per cycle
  (frontend, deps, structural, recovery), conserving
  ``issue_width × cycles`` slots exactly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.bitwidth.detect import operand_pair_width
from repro.core.config import BASELINE, MachineConfig
from repro.core.feed import DynInst, Feed
from repro.core.ruu import RUU, RUUEntry
from repro.isa.instruction import Program
from repro.isa.opcodes import Opcode, OpClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs.attribution import StallAttribution
from repro.obs.events import (
    CommitEvent,
    CompleteEvent,
    DispatchEvent,
    Event,
    FetchEvent,
    ICacheMissEvent,
    IssueEvent,
    MispredictRecoverEvent,
    PackJoinEvent,
    ReplayTrapEvent,
    SquashEvent,
    Subscriber,
)
from repro.packing.pack import OpenPack, open_pack, replay_overflows, try_join
from repro.power.accounting import PowerAccountant, PowerReport
from repro.stats.counters import CoreStats
from repro.stats.fluctuation import FluctuationTracker
from repro.stats.widths import WIDTH_TRACKED_CLASSES, WidthHistogram


@dataclass
class RunResult:
    """Everything a single simulation run produces."""

    name: str
    config: MachineConfig
    stats: CoreStats
    widths: WidthHistogram
    fluctuation: FluctuationTracker
    power: PowerReport | None

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class Machine:
    """One simulated processor bound to one program."""

    def __init__(self, program: Program,
                 config: MachineConfig = BASELINE) -> None:
        self.program = program
        self.config = config
        self.feed = Feed(program, config)
        self.hierarchy = MemoryHierarchy(config.hierarchy)
        self.ruu = RUU(size=config.ruu_size, lsq_size=config.lsq_size)
        self.fetch_queue: deque[DynInst] = deque()
        self.stats = CoreStats()
        self.widths = WidthHistogram()
        self.fluctuation = FluctuationTracker()
        self.accountant = PowerAccountant(policy=config.gating)

        self._producer: dict[int, int] = {}        # reg -> producing seq
        self._completions: dict[int, list[RUUEntry]] = {}
        self._cycle = 0
        self._fetch_stall_until = 0
        self._fetch_resume = 0
        self._measuring = True
        self._capture = None
        self.done = False

        # observability (zero-cost until something attaches)
        self._subscribers: list[Subscriber] = []
        self._probes: list = []
        self.attribution: StallAttribution | None = None

    # ----------------------------------------------------------- observability

    def subscribe(self, handler: Subscriber) -> Subscriber:
        """Attach an event-bus subscriber (a callable taking one
        :class:`~repro.obs.events.Event`); returns it for chaining."""
        self._subscribers.append(handler)
        return handler

    def unsubscribe(self, handler: Subscriber) -> None:
        self._subscribers.remove(handler)

    def add_probe(self, probe) -> object:
        """Attach a per-cycle probe: ``probe.on_cycle(machine)`` runs
        after every simulated cycle."""
        self._probes.append(probe)
        return probe

    def remove_probe(self, probe) -> None:
        self._probes.remove(probe)

    @property
    def cycle(self) -> int:
        """Current simulated cycle (read-only observability accessor)."""
        return self._cycle

    def pending_completions(self) -> dict[int, list["RUUEntry"]]:
        """Scheduled writebacks keyed by completion cycle.

        Live view for probes (the chaos harness's replay-drop injector
        perturbs entries here before their writeback cycle); treat as
        read-only structure — mutate only entry fields, never the dict.
        """
        return self._completions

    def enable_stall_attribution(self) -> StallAttribution:
        """Turn on top-down issue-slot accounting; returns the
        accumulating :class:`~repro.obs.attribution.StallAttribution`."""
        if self.attribution is None:
            self.attribution = StallAttribution(
                issue_width=self.config.issue_width)
        return self.attribution

    def enable_profiling(self, profiler=None):
        """Attach a wall-clock phase profiler
        (:class:`~repro.perf.profiler.PhaseProfiler`) to this machine's
        hot loop; returns it (detach with ``profiler.detach()``).

        Opt-in and attach-time only: a machine that never calls this
        runs the exact unwrapped code path (the perf package is not
        even imported), mirroring the event bus's
        zero-cost-when-unused contract.
        """
        if profiler is None:
            from repro.perf.profiler import PhaseProfiler
            profiler = PhaseProfiler()
        return profiler.attach(self)

    def _emit(self, event: Event) -> None:
        for handler in self._subscribers:
            handler(event)

    def attach_capture(self, sink):
        """Attach a dynamic-trace capture sink (zero-cost when absent).

        ``sink`` is a callable invoked with every *measured*
        :class:`~repro.core.feed.DynInst` — the exact stream the width /
        fluctuation / power instruments observe at issue time, wrong
        path and replay re-issues included.  The fast backend
        (:mod:`repro.fastsim`) replays such a capture through its
        vectorized twins; the round-trip tests use this hook to prove
        the replay reproduces this machine's instruments bit-exactly.
        Returns ``sink`` for chaining; detach with ``detach_capture``.
        """
        self._capture = sink
        return sink

    def detach_capture(self) -> None:
        self._capture = None

    # ------------------------------------------------------------------ run

    def fast_forward(self, instructions: int) -> int:
        """Warm caches and predictors functionally (paper Section 3.2:
        'a fast-mode ... simulation that updates only the caches and
        branch predictors').  Returns instructions actually executed."""
        self.feed.fast_mode = True
        executed = 0
        for _ in range(instructions):
            dyn = self.feed.next()
            if dyn is None:
                break
            self.hierarchy.fetch_instruction(dyn.pc)
            if dyn.mem_addr is not None:
                self.hierarchy.access_data(dyn.mem_addr,
                                           is_write=dyn.inst.is_store)
            executed += 1
        self.feed.fast_mode = False
        return executed

    def run(self, max_insts: int | None = None) -> RunResult:
        """Simulate until the program halts (or ``max_insts`` commit)."""
        target = self.stats.committed + max_insts if max_insts else None
        while not self.done and self._cycle < self.config.max_cycles:
            if target is not None and self.stats.committed >= target:
                break
            self.step()
        power = (self.accountant.report(self.stats.cycles)
                 if self.stats.cycles else None)
        return RunResult(name=self.program.name, config=self.config,
                         stats=self.stats, widths=self.widths,
                         fluctuation=self.fluctuation, power=power)

    def step(self) -> None:
        """Simulate one machine cycle (all stages, reverse order)."""
        self._commit()
        self._writeback()
        self._issue()
        self._dispatch()
        self._fetch()
        self._cycle += 1
        self.stats.cycles += 1
        if self._probes:
            for probe in self._probes:
                probe.on_cycle(self)

    #: Back-compat alias: external drivers historically stepped the
    #: machine through the private name.
    _step = step

    # ---------------------------------------------------------------- commit

    def _commit(self) -> None:
        retired = 0
        while retired < self.config.commit_width:
            head = self.ruu.head()
            if head is None or not head.completed:
                break
            self.ruu.retire_head()
            if self._subscribers:
                self._emit(CommitEvent(cycle=self._cycle, seq=head.seq))
            dyn = head.dyn
            dest = dyn.inst.dest_reg()
            if dest is not None and self._producer.get(dest) == head.seq:
                del self._producer[dest]
            if dyn.inst.is_store and dyn.mem_addr is not None:
                self.hierarchy.access_data(dyn.mem_addr, is_write=True)
            self.stats.committed += 1
            self.stats.count_class(dyn.op_class.value)
            if dyn.inst.is_branch:
                self.stats.branches_committed += 1
                if dyn.inst.is_conditional:
                    self.stats.cond_branches_committed += 1
            retired += 1
            if dyn.inst.opcode is Opcode.HALT:
                self.done = True
                break

    # -------------------------------------------------------------- writeback

    def _writeback(self) -> None:
        entries = self._completions.pop(self._cycle, None)
        if not entries:
            return
        for entry in entries:
            if entry.squashed:
                continue
            if entry.replay_packed and replay_overflows(entry):
                # Replay trap: squash this instruction's speculative
                # packed execution and re-issue it full width.
                entry.issued = False
                entry.replay_packed = False
                entry.no_pack = True
                entry.replay_pending = True
                entry.replay_ready_cycle = self._cycle + 1
                self.stats.replay_traps += 1
                if self._subscribers:
                    self._emit(ReplayTrapEvent(cycle=self._cycle,
                                               seq=entry.seq))
                continue
            entry.completed = True
            entry.complete_cycle = self._cycle
            self.stats.completed += 1
            if self._subscribers:
                self._emit(CompleteEvent(cycle=self._cycle, seq=entry.seq))
            dyn = entry.dyn
            if dyn.mispredicted and not dyn.spec:
                self._recover(entry)

    def _recover(self, branch: RUUEntry) -> None:
        """Misprediction recovery at branch resolution."""
        self.stats.mispredicts += 1
        squashed = self.ruu.squash_after(branch.seq)
        dropped = list(self.fetch_queue) if self._subscribers else ()
        self.fetch_queue.clear()
        self.feed.recover()
        self._rebuild_producers()
        # Redirect: one cycle to restart fetch plus Table 1's penalty.
        self._fetch_resume = self._cycle + 1 + self.config.mispredict_penalty
        if self._subscribers:
            self._emit(MispredictRecoverEvent(
                cycle=self._cycle, seq=branch.seq,
                resume_cycle=self._fetch_resume))
            for entry in squashed:
                self._emit(SquashEvent(cycle=self._cycle, seq=entry.seq))
            for dyn in dropped:
                self._emit(SquashEvent(cycle=self._cycle, seq=dyn.seq))

    def _rebuild_producers(self) -> None:
        self._producer.clear()
        for entry in self.ruu.entries:
            dest = entry.dyn.inst.dest_reg()
            if dest is not None:
                self._producer[dest] = entry.seq

    # ------------------------------------------------------------------ issue

    def _issue(self) -> None:
        config = self.config
        pcfg = config.packing
        slots = config.issue_width
        alus = config.int_alus
        mults = config.int_mult_div
        packs: dict[object, OpenPack] = {}
        # stall-attribution bookkeeping (cheap int/bool updates; only
        # consumed when enable_stall_attribution() was called)
        n_struct_alu = 0
        n_struct_mult = 0
        blocked = False

        for entry in self.ruu.entries:
            if entry.issued or entry.completed or entry.squashed:
                continue
            if slots <= 0 and not (pcfg.enabled and packs):
                break
            if entry.dispatch_cycle >= self._cycle:
                blocked = True   # dispatched this cycle; issuable next
                break   # younger entries dispatched even later
            if entry.replay_pending and self._cycle < entry.replay_ready_cycle:
                blocked = True   # serving a replay re-issue window
                continue
            if not self._ready(entry):
                blocked = True   # waiting on producers (deps not ready)
                continue
            dyn = entry.dyn
            needs_mult = dyn.op_class is OpClass.INT_MULT

            if pcfg.enabled and not needs_mult and not entry.replay_pending:
                pack, is_replay = try_join(packs, entry, pcfg)
                if pack is not None:
                    self._start_execution(entry, packed=True,
                                          replay=is_replay)
                    self._count_pack_member(pack)
                    if self._subscribers:
                        self._emit(PackJoinEvent(
                            cycle=self._cycle, seq=entry.seq,
                            leader_seq=pack.members[0].seq,
                            size=len(pack.members)))
                    continue
            if slots <= 0:
                continue
            if needs_mult:
                if mults <= 0:
                    n_struct_mult += 1   # ready, denied the multiplier
                    continue
                mults -= 1
            else:
                if alus <= 0:
                    n_struct_alu += 1    # ready, denied an ALU
                    continue
                alus -= 1
            slots -= 1
            self._start_execution(entry)
            if (pcfg.enabled and not needs_mult
                    and not entry.replay_pending):
                open_pack(packs, entry, pcfg)

        if self.attribution is not None:
            self.attribution.account_cycle(
                used=config.issue_width - slots, unused=slots,
                n_struct_alu=n_struct_alu, n_struct_mult=n_struct_mult,
                blocked=blocked,
                in_recovery=self._cycle < self._fetch_resume)

    def _count_pack_member(self, pack: OpenPack) -> None:
        """Pack statistics: a pack 'happens' once a second member joins."""
        if len(pack.members) == 2:
            self.stats.pack_groups += 1
            self.stats.packed_ops += 2   # leader + first follower
            pack.members[0].packed = True
            pack.members[0].pack_leader = True
            if pack.wide_leader:
                # A wide op opened this pack; gaining a companion makes
                # its upper-bit pass-through speculative (Section 5.3).
                pack.members[0].replay_packed = True
                self.stats.replay_packed_ops += 1
        else:
            self.stats.packed_ops += 1
        member = pack.members[-1]
        if member.replay_packed:
            self.stats.replay_packed_ops += 1

    def _ready(self, entry: RUUEntry) -> bool:
        for seq in entry.deps:
            if not self.ruu.dep_satisfied(seq):
                return False
        return True

    def _start_execution(self, entry: RUUEntry, packed: bool = False,
                         replay: bool = False) -> None:
        config = self.config
        dyn = entry.dyn
        entry.issued = True
        entry.issue_cycle = self._cycle
        entry.packed = entry.packed or packed
        entry.replay_packed = replay
        entry.replay_pending = False
        if self._subscribers:
            self._emit(IssueEvent(cycle=self._cycle, seq=entry.seq,
                                  packed=packed, replay=replay))
        if dyn.op_class is OpClass.INT_MULT:
            latency = config.mult_latency
        elif dyn.inst.is_load and dyn.mem_addr is not None:
            latency = (config.alu_latency
                       + self.hierarchy.access_data(dyn.mem_addr))
        else:
            latency = config.alu_latency
        self._completions.setdefault(self._cycle + latency, []).append(entry)
        self.stats.issued += 1
        if self._measuring:
            self._measure(dyn)

    def _measure(self, dyn: DynInst) -> None:
        """Sample the paper's instruments at execution time."""
        if dyn.op_class in WIDTH_TRACKED_CLASSES:
            pair = operand_pair_width(dyn.a_val, dyn.b_val)
            self.widths.record(dyn.op_class, pair)
            self.fluctuation.record(dyn.pc, pair)
            self.accountant.record_op(
                dyn.op_class, dyn.tag_a, dyn.tag_b,
                produces_result=dyn.result is not None,
                operand_from_load=dyn.operand_from_load)
        elif dyn.op_class is OpClass.JUMP:
            self.accountant.record_op(
                dyn.op_class, dyn.tag_a, dyn.tag_b,
                produces_result=dyn.result is not None,
                operand_from_load=dyn.operand_from_load)
        else:
            return
        if self._capture is not None:
            self._capture(dyn)

    # ---------------------------------------------------------------- dispatch

    def _dispatch(self) -> None:
        dispatched = 0
        while dispatched < self.config.decode_width and self.fetch_queue:
            dyn = self.fetch_queue[0]
            if dyn.fetch_cycle >= self._cycle:
                break
            if not self.ruu.has_room(dyn.inst.is_mem):
                break
            self.fetch_queue.popleft()
            entry = RUUEntry(dyn=dyn, dispatch_cycle=self._cycle,
                             deps=self._dependences(dyn))
            if dyn.op_class in (OpClass.NOP, OpClass.HALT):
                entry.issued = True
                entry.completed = True
                entry.complete_cycle = self._cycle
            self.ruu.add(entry)
            if self._subscribers:
                self._emit(DispatchEvent(cycle=self._cycle, seq=dyn.seq))
                if entry.completed:   # NOP/HALT complete at dispatch
                    self._emit(CompleteEvent(cycle=self._cycle,
                                             seq=dyn.seq))
            dest = dyn.inst.dest_reg()
            if dest is not None:
                self._producer[dest] = dyn.seq
            self.stats.dispatched += 1
            dispatched += 1

    def _dependences(self, dyn: DynInst) -> tuple[int, ...]:
        deps = []
        for reg in dyn.inst.src_regs():
            seq = self._producer.get(reg)
            if seq is not None:
                deps.append(seq)
        if dyn.inst.is_load and dyn.mem_addr is not None:
            deps.extend(self._older_store_deps(dyn))
        return tuple(deps)

    def _older_store_deps(self, dyn: DynInst) -> list[int]:
        """Loads wait on older overlapping stores (oracle addresses, as
        in SimpleScalar's LSQ)."""
        lo = dyn.mem_addr
        hi = lo + dyn.inst.mem_size
        deps = []
        for entry in self.ruu.entries:
            other = entry.dyn
            if not other.inst.is_store or other.mem_addr is None:
                continue
            if other.mem_addr < hi and lo < other.mem_addr + other.inst.mem_size:
                deps.append(other.seq)
        return deps

    # ------------------------------------------------------------------ fetch

    def _fetch(self) -> None:
        if self._cycle < self._fetch_resume:
            return
        if self._cycle < self._fetch_stall_until:
            return
        fetched = 0
        l1_latency = self.config.hierarchy.l1_latency
        while (fetched < self.config.fetch_width
               and len(self.fetch_queue) < self.config.fetch_queue_size):
            dyn = self.feed.next()
            if dyn is None:
                break
            self.stats.fetched += 1
            latency = self.hierarchy.fetch_instruction(dyn.pc)
            dyn.fetch_cycle = self._cycle
            self.fetch_queue.append(dyn)
            fetched += 1
            missed = latency > l1_latency
            if missed:
                # I-cache miss: this instruction arrives when the fill
                # completes, and fetch stalls until then.
                dyn.fetch_cycle = self._cycle + latency - 1
                self._fetch_stall_until = self._cycle + latency - 1
            if self._subscribers:
                if missed:
                    self._emit(ICacheMissEvent(cycle=self._cycle,
                                               pc=dyn.pc, latency=latency))
                self._emit(FetchEvent(cycle=dyn.fetch_cycle, seq=dyn.seq,
                                      pc=dyn.pc, spec=dyn.spec,
                                      text=str(dyn.inst)))
            if missed:
                break
            if dyn.next_index != dyn.index + 1:
                break   # fetch break after any predicted-taken transfer
