"""Pipeline tracing: per-instruction stage timelines.

A :class:`PipelineTracer` attaches to a :class:`~repro.core.machine.Machine`
and records, for every dynamic instruction, the cycles at which it was
fetched, dispatched, issued, completed, and committed (or squashed).
:func:`render_trace` prints the classic textbook pipeline diagram —
invaluable when debugging issue-packing decisions or recovery timing,
and used by the test suite to assert stage-ordering invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.machine import Machine


@dataclass
class InstructionTimeline:
    """Stage timestamps of one dynamic instruction."""

    seq: int
    text: str
    spec: bool
    fetch: int = -1
    dispatch: int = -1
    issue: int = -1
    complete: int = -1
    commit: int = -1
    squashed: bool = False

    def stages(self) -> dict[str, int]:
        return {"F": self.fetch, "D": self.dispatch, "I": self.issue,
                "C": self.complete, "R": self.commit}


@dataclass
class PipelineTracer:
    """Records stage timestamps by observing a machine step by step."""

    machine: Machine
    timelines: dict[int, InstructionTimeline] = field(default_factory=dict)
    _committed_seen: int = 0

    def run(self, max_cycles: int | None = None) -> None:
        """Drive the machine to completion, recording each cycle."""
        limit = max_cycles or self.machine.config.max_cycles
        while not self.machine.done and self.machine.stats.cycles < limit:
            self.step()

    def step(self) -> None:
        """Advance the machine one cycle and snapshot stage movement."""
        machine = self.machine
        before_commit = machine.stats.committed
        ruu_before = {entry.seq: entry for entry in machine.ruu.entries}
        head_seqs = [entry.seq for entry in machine.ruu.entries]

        machine._step()
        cycle = machine.stats.cycles - 1   # the cycle just simulated

        # New fetch-queue arrivals.
        for dyn in machine.fetch_queue:
            timeline = self._timeline_for(dyn)
            if timeline.fetch < 0:
                timeline.fetch = dyn.fetch_cycle

        # RUU entries: dispatch / issue / completion transitions.
        for entry in machine.ruu.entries:
            timeline = self._timeline_for(entry.dyn)
            if timeline.fetch < 0:
                timeline.fetch = entry.dyn.fetch_cycle
            if timeline.dispatch < 0:
                timeline.dispatch = entry.dispatch_cycle
            if entry.issued and timeline.issue < 0:
                timeline.issue = entry.issue_cycle
            if entry.completed and timeline.complete < 0:
                timeline.complete = entry.complete_cycle

        # Commits this cycle: entries that left the RUU head in order.
        committed_now = machine.stats.committed - before_commit
        if committed_now:
            for seq in head_seqs[:committed_now]:
                entry = ruu_before[seq]
                timeline = self._timeline_for(entry.dyn)
                if entry.issued and timeline.issue < 0:
                    timeline.issue = entry.issue_cycle
                if timeline.complete < 0:
                    timeline.complete = entry.complete_cycle
                timeline.commit = cycle

        # Squashes: entries that vanished without committing.
        surviving = {entry.seq for entry in machine.ruu.entries}
        for seq, entry in ruu_before.items():
            if (seq not in surviving
                    and seq not in head_seqs[:committed_now]):
                self._timeline_for(entry.dyn).squashed = True

    def _timeline_for(self, dyn) -> InstructionTimeline:
        timeline = self.timelines.get(dyn.seq)
        if timeline is None:
            timeline = InstructionTimeline(seq=dyn.seq, text=str(dyn.inst),
                                           spec=dyn.spec)
            self.timelines[dyn.seq] = timeline
        return timeline

    def committed(self) -> list[InstructionTimeline]:
        """Timelines of committed instructions, in program order."""
        return sorted(
            (t for t in self.timelines.values() if t.commit >= 0),
            key=lambda t: t.seq)


def render_trace(tracer: PipelineTracer, first: int = 0,
                 count: int = 20) -> str:
    """Render a pipeline diagram for a window of committed instructions.

    Columns are cycles; cells show F/D/I/C/R for fetch, dispatch,
    issue, complete, and retire (commit).
    """
    rows = tracer.committed()[first:first + count]
    if not rows:
        return "(no committed instructions traced)"
    start = min(t.fetch for t in rows if t.fetch >= 0)
    end = max(t.commit for t in rows)
    width = end - start + 1
    lines = [f"cycles {start}..{end}"]
    for timeline in rows:
        cells = [" "] * width
        for mark, cycle in timeline.stages().items():
            if cycle >= 0 and start <= cycle <= end:
                cells[cycle - start] = mark
        lines.append(f"{timeline.seq:5d} {timeline.text:28s} "
                     + "".join(cells))
    return "\n".join(lines)


def program_listing(program) -> str:
    """A human-readable disassembly listing of a program."""
    lines = []
    for index, inst in enumerate(program.instructions):
        lines.append(f"{program.pc_of(index):#010x}  {index:5d}  {inst}")
    return "\n".join(lines)
