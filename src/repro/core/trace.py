"""Pipeline tracing: per-instruction stage timelines.

A :class:`PipelineTracer` subscribes to a machine's pipeline event bus
and records, for every dynamic instruction, the cycles at which it was
fetched, dispatched, issued, completed, and committed (or squashed) —
no per-cycle rescans of machine internals, just event replay.
:func:`render_trace` prints the classic textbook pipeline diagram —
invaluable when debugging issue-packing decisions or recovery timing,
and used by the test suite to assert stage-ordering invariants.

The tracer keeps its historical driving API (:meth:`PipelineTracer.run`
and :meth:`PipelineTracer.step`) as a thin shim over the machine's
public :meth:`~repro.core.machine.Machine.step`, so existing callers
and tests keep working; but because it is only a subscriber, it equally
well observes a machine driven by anything else (e.g.
:meth:`~repro.core.machine.Machine.run`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machine import Machine
from repro.obs.events import Event


@dataclass
class InstructionTimeline:
    """Stage timestamps of one dynamic instruction."""

    seq: int
    text: str
    spec: bool
    fetch: int = -1
    dispatch: int = -1
    issue: int = -1
    complete: int = -1
    commit: int = -1
    squashed: bool = False

    def stages(self) -> dict[str, int]:
        return {"F": self.fetch, "D": self.dispatch, "I": self.issue,
                "C": self.complete, "R": self.commit}


class PipelineTracer:
    """Builds stage timelines by subscribing to a machine's event bus."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.timelines: dict[int, InstructionTimeline] = {}
        machine.subscribe(self._on_event)

    def detach(self) -> None:
        """Stop observing (the recorded timelines remain available)."""
        self.machine.unsubscribe(self._on_event)

    # -------------------------------------------------------------- driving

    def run(self, max_cycles: int | None = None) -> None:
        """Drive the machine to completion (back-compat shim)."""
        limit = max_cycles or self.machine.config.max_cycles
        while not self.machine.done and self.machine.stats.cycles < limit:
            self.step()

    def step(self) -> None:
        """Advance the machine one cycle (back-compat shim)."""
        self.machine.step()

    # ------------------------------------------------------------ observing

    def _on_event(self, event: Event) -> None:
        kind = event.kind
        if kind == "fetch":
            timeline = self._timeline_for(event.seq, event.text, event.spec)
            if timeline.fetch < 0:
                timeline.fetch = event.cycle
            return
        if kind in ("icache_miss", "mispredict_recover"):
            return
        timeline = self._timeline_for(event.seq)
        if kind == "dispatch":
            if timeline.dispatch < 0:
                timeline.dispatch = event.cycle
        elif kind == "issue":
            if timeline.issue < 0:
                timeline.issue = event.cycle
        elif kind == "complete":
            if timeline.complete < 0:
                timeline.complete = event.cycle
        elif kind == "commit":
            timeline.commit = event.cycle
        elif kind == "squash":
            timeline.squashed = True

    def _timeline_for(self, seq: int, text: str = "?",
                      spec: bool = False) -> InstructionTimeline:
        timeline = self.timelines.get(seq)
        if timeline is None:
            timeline = InstructionTimeline(seq=seq, text=text, spec=spec)
            self.timelines[seq] = timeline
        return timeline

    def committed(self) -> list[InstructionTimeline]:
        """Timelines of committed instructions, in program order."""
        return sorted(
            (t for t in self.timelines.values() if t.commit >= 0),
            key=lambda t: t.seq)


def render_trace(tracer: PipelineTracer, first: int = 0,
                 count: int = 20) -> str:
    """Render a pipeline diagram for a window of committed instructions.

    Columns are cycles; cells show F/D/I/C/R for fetch, dispatch,
    issue, complete, and retire (commit).
    """
    rows = tracer.committed()[first:first + count]
    if not rows:
        return "(no committed instructions traced)"
    start = min(t.fetch for t in rows if t.fetch >= 0)
    end = max(t.commit for t in rows)
    width = end - start + 1
    lines = [f"cycles {start}..{end}"]
    for timeline in rows:
        cells = [" "] * width
        for mark, cycle in timeline.stages().items():
            if cycle >= 0 and start <= cycle <= end:
                cells[cycle - start] = mark
        lines.append(f"{timeline.seq:5d} {timeline.text:28s} "
                     + "".join(cells))
    return "\n".join(lines)


def program_listing(program) -> str:
    """A human-readable disassembly listing of a program."""
    lines = []
    for index, inst in enumerate(program.instructions):
        lines.append(f"{program.pc_of(index):#010x}  {index:5d}  {inst}")
    return "\n".join(lines)
