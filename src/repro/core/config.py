"""Machine configuration (paper Table 1 plus optimization knobs).

:data:`BASELINE` reproduces Table 1 exactly.  The experiment harness
derives the paper's other configurations from it:

* packing enabled (Figures 10/11),
* replay packing (Section 5.3),
* 8-wide decode (Section 5.4),
* 8-issue / 8-ALU (Figure 11's third machine),
* perfect vs combining branch prediction (Figures 2/10).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

from repro.memory.hierarchy import HierarchyConfig
from repro.power.gating import GatingPolicy


@dataclass(frozen=True)
class PackingConfig:
    """Operation-packing (Section 5) configuration."""

    enabled: bool = False
    #: allow replay packing: one wide operand, squash on carry-out
    #: (Section 5.3).
    replay: bool = False
    #: 16-bit subword lanes per 64-bit ALU (4 in HP MAX-style hardware;
    #: Figure 8 shows 2 — ablated in the benchmarks).
    max_subwords: int = 4
    #: require identical opcodes to pack (True) or merely the same
    #: operation class (False).  The paper requires "the same operation".
    same_opcode: bool = True


@dataclass(frozen=True)
class ObsConfig:
    """Observability defaults consumed by the obs layer (the event bus
    itself is always available and free when unused)."""

    #: interval-sampler window in cycles (``repro-obs --window``).
    sampler_window: int = 1000
    #: record the raw event trace by default in the obs CLI.
    events: bool = False
    #: cap on recorded events per run (traces are large).
    max_events: int = 200_000


@dataclass(frozen=True)
class MachineConfig:
    """Full processor configuration; defaults are the paper's Table 1."""

    # processor core (Table 1)
    ruu_size: int = 80
    lsq_size: int = 40
    fetch_queue_size: int = 8
    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    int_alus: int = 4
    int_mult_div: int = 1

    # latencies
    alu_latency: int = 1
    mult_latency: int = 3
    mispredict_penalty: int = 2   # Table 1 "Mispredict penalty: 2 cycles"

    # branch prediction (Table 1's combining predictor by default)
    predictor: str = "combining"
    btb_entries: int = 2048
    btb_assoc: int = 2
    ras_entries: int = 32

    # memory hierarchy (Table 1)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)

    # narrow-width optimizations
    packing: PackingConfig = field(default_factory=PackingConfig)
    gating: GatingPolicy = field(default_factory=GatingPolicy)

    # observability defaults (sampler window, event-trace caps)
    obs: ObsConfig = field(default_factory=ObsConfig)

    # simulation safety net
    max_cycles: int = 200_000_000

    def fingerprint(self) -> str:
        """Stable hex digest identifying this configuration.

        Computed over the canonical JSON form of every field (nested
        dataclasses included), so it is identical across processes and
        sessions — unlike ``hash()``, which is salted per process.  The
        persistent result cache and the obs manifest filenames key on
        it: any field change yields a new fingerprint and therefore a
        cache miss.
        """
        payload = json.dumps(asdict(self), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # -- derived configurations used by the paper -----------------------------

    def with_packing(self, replay: bool = False,
                     max_subwords: int = 4,
                     same_opcode: bool = True) -> "MachineConfig":
        """This configuration with operation packing turned on."""
        return replace(self, packing=PackingConfig(
            enabled=True, replay=replay, max_subwords=max_subwords,
            same_opcode=same_opcode))

    def with_predictor(self, kind: str) -> "MachineConfig":
        return replace(self, predictor=kind)

    def with_decode_width(self, width: int) -> "MachineConfig":
        """Section 5.4's 8-wide decode variant (fetch scales to match)."""
        return replace(self, decode_width=width, fetch_width=width,
                       fetch_queue_size=max(self.fetch_queue_size, width))

    def with_issue_width(self, width: int, alus: int) -> "MachineConfig":
        """Figure 11's wider-issue comparison machine."""
        return replace(self, issue_width=width, int_alus=alus)

    def with_gating(self, gating: GatingPolicy) -> "MachineConfig":
        return replace(self, gating=gating)

    def with_obs(self, sampler_window: int | None = None,
                 events: bool | None = None,
                 max_events: int | None = None) -> "MachineConfig":
        """This configuration with adjusted observability defaults."""
        obs = self.obs
        return replace(self, obs=ObsConfig(
            sampler_window=(sampler_window if sampler_window is not None
                            else obs.sampler_window),
            events=events if events is not None else obs.events,
            max_events=(max_events if max_events is not None
                        else obs.max_events)))


#: Table 1 baseline.
BASELINE = MachineConfig()


def named_configs() -> dict[str, MachineConfig]:
    """The named machine configurations shared by every public surface
    that accepts a configuration *by name* — the experiment service's
    submission API (:mod:`repro.service.api`) and the
    ``repro-equivalence`` sweep.  Names are part of the wire contract:
    removing or changing one is a breaking API change.
    """
    return {
        "baseline": BASELINE,
        "packing": BASELINE.with_packing(),
        "packing-replay": BASELINE.with_packing(replay=True),
        "no-detect": BASELINE.with_gating(GatingPolicy(detect_loads=False)),
        "wide-decode": BASELINE.with_decode_width(8),
        "wide-issue": BASELINE.with_issue_width(8, 8),
        "perfect-predictor": BASELINE.with_predictor("perfect"),
    }
