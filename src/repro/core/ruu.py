"""Reservation update unit (RUU) entries and occupancy tracking.

Section 3.1: "The simulated processor contains a unified active
instruction list, issue queue, and rename register file in one unit
called the reservation update unit (RUU)", with a separate load/store
queue (LSQ) occupancy limit.  Entries also hold the per-operand width
tags the paper's hardware stores in each reservation station
(Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.feed import DynInst


@dataclass(slots=True)
class RUUEntry:
    """One in-flight instruction in the RUU."""

    dyn: DynInst
    dispatch_cycle: int
    #: seqs of in-flight producers this entry waits on (register deps
    #: plus, for loads, older overlapping stores).
    deps: tuple[int, ...] = ()

    issued: bool = False
    issue_cycle: int = -1
    completed: bool = False
    complete_cycle: int = -1
    squashed: bool = False

    # operation packing state
    packed: bool = False          # issued as part of a multi-op pack
    pack_leader: bool = False
    replay_packed: bool = False   # speculatively packed with a wide operand
    replay_pending: bool = False  # overflowed; awaiting full-width re-issue
    replay_ready_cycle: int = -1
    no_pack: bool = False         # excluded from packing (post-replay)

    @property
    def seq(self) -> int:
        return self.dyn.seq


@dataclass
class RUU:
    """The RUU proper: an age-ordered window with an LSQ occupancy cap."""

    size: int = 80
    lsq_size: int = 40
    entries: list[RUUEntry] = field(default_factory=list)
    _inflight: dict[int, RUUEntry] = field(default_factory=dict)
    _lsq_count: int = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def lsq_used(self) -> int:
        """Occupied LSQ slots (observability: sampler occupancy series)."""
        return self._lsq_count

    def has_room(self, is_mem: bool) -> bool:
        if len(self.entries) >= self.size:
            return False
        if is_mem and self._lsq_count >= self.lsq_size:
            return False
        return True

    def add(self, entry: RUUEntry) -> None:
        self.entries.append(entry)
        self._inflight[entry.seq] = entry
        if entry.dyn.inst.is_mem:
            self._lsq_count += 1

    def get(self, seq: int) -> RUUEntry | None:
        """In-flight entry by sequence number (None once retired)."""
        return self._inflight.get(seq)

    def head(self) -> RUUEntry | None:
        return self.entries[0] if self.entries else None

    def retire_head(self) -> RUUEntry:
        entry = self.entries.pop(0)
        del self._inflight[entry.seq]
        if entry.dyn.inst.is_mem:
            self._lsq_count -= 1
        return entry

    def squash_after(self, seq: int) -> list[RUUEntry]:
        """Remove (and return) every entry younger than ``seq``."""
        keep: list[RUUEntry] = []
        squashed: list[RUUEntry] = []
        for entry in self.entries:
            if entry.seq > seq:
                entry.squashed = True
                squashed.append(entry)
                del self._inflight[entry.seq]
                if entry.dyn.inst.is_mem:
                    self._lsq_count -= 1
            else:
                keep.append(entry)
        self.entries = keep
        return squashed

    def dep_satisfied(self, seq: int) -> bool:
        """A producer dependence is satisfied when the producer has
        completed or already retired."""
        producer = self._inflight.get(seq)
        return producer is None or producer.completed

    def audit(self) -> list[str]:
        """Structural accounting invariants; returns violations found.

        Checked per cycle by the invariant guard layer
        (:mod:`repro.robust.guards`): the age-ordered window and the
        seq index must describe the same population, occupancy must
        respect the configured caps, and the LSQ counter must equal a
        recount of in-flight memory operations.
        """
        problems: list[str] = []
        if len(self.entries) != len(self._inflight):
            problems.append(
                f"RUU window holds {len(self.entries)} entries but the "
                f"in-flight index holds {len(self._inflight)}")
        else:
            for entry in self.entries:
                if self._inflight.get(entry.seq) is not entry:
                    problems.append(
                        f"RUU entry seq {entry.seq} missing from (or "
                        f"stale in) the in-flight index")
                    break
        if len(self.entries) > self.size:
            problems.append(
                f"RUU occupancy {len(self.entries)} exceeds size "
                f"{self.size}")
        mem_count = sum(1 for e in self.entries if e.dyn.inst.is_mem)
        if mem_count != self._lsq_count:
            problems.append(
                f"LSQ counter {self._lsq_count} != recount of in-flight "
                f"memory ops {mem_count}")
        if self._lsq_count > self.lsq_size:
            problems.append(
                f"LSQ occupancy {self._lsq_count} exceeds size "
                f"{self.lsq_size}")
        for entry in self.entries:
            if entry.squashed:
                problems.append(
                    f"squashed entry seq {entry.seq} still occupies the "
                    f"RUU window")
                break
        return problems
