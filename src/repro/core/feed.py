"""The dynamic-instruction feed: in-order functional execution.

SimpleScalar's ``sim-outorder`` executes instructions *functionally* at
dispatch, in fetch order — including down mispredicted paths — while a
separate timing model moves the resulting dynamic instructions through
the pipeline.  This module is that functional half.

The feed owns the (speculative) register file, data memory, branch
predictor, BTB, and return-address stack.  Each call to :meth:`Feed.next`
fetches, predicts, and functionally executes one instruction, producing
a fully resolved :class:`DynInst` (operand values, width tags, result,
actual and predicted successor).  When a prediction is wrong the feed
checkpoints architected state and continues down the *predicted* path in
speculative mode; :meth:`Feed.recover` rewinds to the checkpoint when
the timing model resolves the branch.

This organization gives the paper's mechanisms exactly the information
the proposed hardware has: operand values (hence width tags) become
known as results are produced, and wrong-path operations are observed
just as a real front end would observe them (Section 2.3 / Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bitwidth.tags import UNKNOWN_TAG, ZERO_TAG, WidthTag, tag_value
from repro.branch.btb import BranchTargetBuffer, ReturnAddressStack
from repro.branch.predictors import DirectionPredictor, PerfectPredictor, make_predictor
from repro.core.config import MachineConfig
from repro.isa.instruction import Instruction, Program
from repro.isa.opcodes import Opcode, OpClass
from repro.isa.registers import NUM_INT_REGS, ZERO_REG
from repro.isa.semantics import branch_taken, compute, sext, to_unsigned
from repro.memory.backing import MainMemory, SpeculativeMemory


@dataclass(slots=True)
class DynInst:
    """One dynamic instruction, fully resolved by functional execution."""

    seq: int
    index: int                 # static instruction index
    pc: int                    # simulated byte address
    inst: Instruction
    op_class: OpClass

    # ALU operand pair (the values whose widths the paper studies; for
    # memory operations this is the address calculation base+disp).
    a_val: int = 0
    b_val: int = 0
    tag_a: WidthTag = ZERO_TAG
    tag_b: WidthTag = ZERO_TAG
    operand_from_load: bool = False

    result: int | None = None   # value written to the destination
    mem_addr: int | None = None
    store_value: int | None = None

    # control flow
    taken: bool = False
    actual_next: int = 0        # correct successor index
    next_index: int = 0         # index the feed actually moved to
    mispredicted: bool = False  # first wrong prediction on the good path
    spec: bool = False          # executed on the wrong path

    # set by the timing model: cycle this instruction arrived from the
    # I-cache (dispatch may begin the following cycle).
    fetch_cycle: int = -1

    @property
    def pair_narrow16(self) -> bool:
        """Both ALU operands <= 16 bits (packing/gating precondition)."""
        return self.tag_a.narrow16 and self.tag_b.narrow16

    @property
    def pair_narrow33(self) -> bool:
        return self.tag_a.narrow33 and self.tag_b.narrow33


class _Checkpoint:
    """Architected state saved when the feed goes speculative."""

    __slots__ = ("regs", "tags", "from_load", "resume_index", "branch_seq")

    def __init__(self, regs: list[int], tags: list[WidthTag],
                 from_load: list[bool], resume_index: int,
                 branch_seq: int) -> None:
        self.regs = regs
        self.tags = tags
        self.from_load = from_load
        self.resume_index = resume_index
        self.branch_seq = branch_seq


class Feed:
    """In-order functional executor with wrong-path speculation."""

    def __init__(self, program: Program, config: MachineConfig,
                 predictor: DirectionPredictor | None = None) -> None:
        self.program = program
        self.config = config
        self.memory = MainMemory(program.image)
        self.spec_memory = SpeculativeMemory(self.memory)
        self.predictor = predictor or make_predictor(config.predictor)
        self.perfect = isinstance(self.predictor, PerfectPredictor)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_assoc)
        self.ras = ReturnAddressStack(config.ras_entries)

        self._regs = [0] * NUM_INT_REGS
        self._tags = [ZERO_TAG] * NUM_INT_REGS
        self._from_load = [False] * NUM_INT_REGS

        self.fetch_index = program.entry
        self.seq = 0
        self.spec_mode = False
        self.halted = False
        #: warmup mode (Section 3.2 methodology): train predictors and
        #: caches but always follow the correct path, never speculate.
        self.fast_mode = False
        self._checkpoint: _Checkpoint | None = None

    # -- register helpers ------------------------------------------------------

    def _read(self, reg: int) -> int:
        return 0 if reg == ZERO_REG else self._regs[reg]

    def _reg_tag(self, reg: int) -> WidthTag:
        return ZERO_TAG if reg == ZERO_REG else self._tags[reg]

    def _write(self, reg: int | None, value: int,
               from_load: bool = False) -> None:
        if reg is None or reg == ZERO_REG:
            return
        self._regs[reg] = value
        self._from_load[reg] = from_load
        if from_load and not self.config.gating.detect_loads:
            # No cache-side zero detect: the hardware learns nothing
            # about this value's width (Section 4.2).
            self._tags[reg] = UNKNOWN_TAG
        else:
            self._tags[reg] = tag_value(value)

    # -- memory helpers -----------------------------------------------------------

    def _mem(self) -> MainMemory | SpeculativeMemory:
        return self.spec_memory if self.spec_mode else self.memory

    def _load_value(self, op: Opcode, addr: int, size: int) -> int:
        raw = self._mem().load(addr, size)
        if op is Opcode.LDL:
            return sext(raw, 32)
        return raw

    # -- the main step ---------------------------------------------------------------

    def next(self) -> DynInst | None:
        """Fetch, predict, and functionally execute one instruction.

        Returns None when the feed cannot supply more instructions: the
        program has halted, or the wrong path ran off the program (the
        timing model's recovery will restart it).
        """
        if self.halted:
            return None
        inst = self.program.fetch(self.fetch_index)
        if inst.opcode is Opcode.HALT and self.spec_mode:
            # Wrong path fell off the program; stall until recovery.
            return None

        dyn = DynInst(
            seq=self.seq,
            index=self.fetch_index,
            pc=self.program.pc_of(self.fetch_index),
            inst=inst,
            op_class=inst.op_class,
            spec=self.spec_mode,
        )
        self.seq += 1
        self._execute(dyn)
        self.fetch_index = dyn.next_index
        if inst.opcode is Opcode.HALT and not self.spec_mode:
            self.halted = True
        return dyn

    # -- functional execution --------------------------------------------------------

    def _execute(self, dyn: DynInst) -> None:
        inst = dyn.inst
        op = inst.opcode
        cls = dyn.op_class
        fall_through = dyn.index + 1

        if cls in (OpClass.INT_ARITH, OpClass.INT_MULT,
                   OpClass.INT_LOGIC, OpClass.INT_SHIFT):
            self._execute_operate(dyn)
            dyn.actual_next = dyn.next_index = fall_through
        elif cls is OpClass.LOAD:
            self._execute_load(dyn)
            dyn.actual_next = dyn.next_index = fall_through
        elif cls is OpClass.STORE:
            self._execute_store(dyn)
            dyn.actual_next = dyn.next_index = fall_through
        elif cls is OpClass.BRANCH or cls is OpClass.JUMP:
            self._execute_control(dyn)
        else:  # NOP / HALT
            dyn.actual_next = dyn.next_index = fall_through

    def _operands(self, dyn: DynInst) -> tuple[int, int]:
        """Resolve the ALU operand pair and record tags/provenance."""
        inst = dyn.inst
        a = self._read(inst.ra) if inst.ra is not None else 0
        tag_a = self._reg_tag(inst.ra) if inst.ra is not None else ZERO_TAG
        from_load = (inst.ra is not None and inst.ra != ZERO_REG
                     and self._from_load[inst.ra])
        if inst.rb is not None:
            b = self._read(inst.rb)
            tag_b = self._reg_tag(inst.rb)
            from_load = from_load or (inst.rb != ZERO_REG
                                      and self._from_load[inst.rb])
        elif inst.imm is not None:
            b = to_unsigned(inst.imm)
            tag_b = tag_value(b)
        else:
            b, tag_b = 0, ZERO_TAG
        dyn.a_val, dyn.b_val = a, b
        dyn.tag_a, dyn.tag_b = tag_a, tag_b
        dyn.operand_from_load = from_load
        return a, b

    def _execute_operate(self, dyn: DynInst) -> None:
        inst = dyn.inst
        a, b = self._operands(dyn)
        old_dest = self._read(inst.rd) if inst.rd is not None else 0
        dyn.result = compute(inst.opcode, a, b, old_dest)
        self._write(inst.rd, dyn.result)

    def _mem_operands(self, dyn: DynInst) -> int:
        """Resolve a memory instruction's *address calculation* operand
        pair (base register + displacement) — the values whose widths
        the paper's Figures 1/5 attribute to address arithmetic — and
        return the effective address."""
        inst = dyn.inst
        base = self._read(inst.rb) if inst.rb is not None else 0
        disp = to_unsigned(inst.imm) if inst.imm is not None else 0
        dyn.a_val, dyn.b_val = base, disp
        dyn.tag_a = self._reg_tag(inst.rb) if inst.rb is not None else ZERO_TAG
        dyn.tag_b = tag_value(disp)
        dyn.operand_from_load = (inst.rb is not None
                                 and inst.rb != ZERO_REG
                                 and self._from_load[inst.rb])
        return (base + disp) & 0xFFFF_FFFF_FFFF_FFFF

    def _execute_load(self, dyn: DynInst) -> None:
        inst = dyn.inst
        addr = self._mem_operands(dyn)
        dyn.mem_addr = addr
        dyn.result = self._load_value(inst.opcode, addr, inst.mem_size)
        self._write(inst.rd, dyn.result, from_load=True)

    def _execute_store(self, dyn: DynInst) -> None:
        inst = dyn.inst
        addr = self._mem_operands(dyn)
        dyn.mem_addr = addr
        dyn.store_value = self._read(inst.ra) if inst.ra is not None else 0
        self._mem().store(addr, dyn.store_value, inst.mem_size)

    # -- control flow --------------------------------------------------------------------

    def _execute_control(self, dyn: DynInst) -> None:
        inst = dyn.inst
        op = inst.opcode
        fall_through = dyn.index + 1
        return_pc = self.program.pc_of(fall_through)

        if inst.is_conditional:
            a, _ = self._operands(dyn)
            dyn.taken = branch_taken(op, a)
            dyn.actual_next = inst.target if dyn.taken else fall_through
            if self.spec_mode:
                # Wrong-path branch: consult but never train the
                # predictor (it would never retire in real hardware).
                predicted_taken = self.predictor.lookup(dyn.pc)
            else:
                predicted_taken = self.predictor.predict(dyn.pc, dyn.taken)
                self.predictor.update(dyn.pc, dyn.taken)
            predicted_next = inst.target if predicted_taken else fall_through
        elif op is Opcode.BR or op is Opcode.BSR:
            dyn.taken = True
            dyn.actual_next = inst.target if inst.target is not None else fall_through
            predicted_next = dyn.actual_next   # direct target, known at decode
            if op is Opcode.BSR:
                dyn.result = return_pc
                self._write(inst.rd, return_pc)
                if not self.spec_mode:
                    self.ras.push(return_pc)
        else:
            # Indirect control: JMP / JSR / RET.
            target_pc = self._read(inst.rb) if inst.rb is not None else 0
            dyn.a_val = target_pc
            dyn.tag_a = self._reg_tag(inst.rb) if inst.rb is not None else ZERO_TAG
            dyn.taken = True
            dyn.actual_next = self.program.index_of(target_pc)
            predicted_next = self._predict_indirect(dyn, op, target_pc,
                                                    return_pc)
            if op is Opcode.JSR:
                dyn.result = return_pc
                self._write(inst.rd, return_pc)

        if self.perfect:
            predicted_next = dyn.actual_next

        if self.fast_mode:
            # Warmup: train, record the would-be outcome, follow truth.
            dyn.mispredicted = predicted_next != dyn.actual_next
            dyn.next_index = dyn.actual_next
            return

        if self.spec_mode:
            # Already on the wrong path: follow the prediction; deeper
            # mispredictions are irrelevant (everything will squash).
            dyn.next_index = predicted_next
            return

        if predicted_next != dyn.actual_next:
            dyn.mispredicted = True
            self._go_speculative(dyn)
            dyn.next_index = predicted_next
        else:
            dyn.next_index = dyn.actual_next

    def _predict_indirect(self, dyn: DynInst, op: Opcode, target_pc: int,
                          return_pc: int) -> int:
        """Predict an indirect target via RAS (returns) or BTB (jumps)."""
        if op is Opcode.RET:
            predicted_pc = self.ras.pop() if not self.spec_mode else None
        else:
            predicted_pc = self.btb.lookup(dyn.pc)
            if op is Opcode.JSR and not self.spec_mode:
                self.ras.push(return_pc)
        if not self.spec_mode:
            self.btb.update(dyn.pc, target_pc)
        if predicted_pc is None:
            return dyn.index + 1    # no prediction: stumble to fall-through
        return self.program.index_of(predicted_pc)

    # -- speculation control -------------------------------------------------------------

    def _go_speculative(self, dyn: DynInst) -> None:
        """Checkpoint architected state at a mispredicted branch."""
        self._checkpoint = _Checkpoint(
            regs=list(self._regs),
            tags=list(self._tags),
            from_load=list(self._from_load),
            resume_index=dyn.actual_next,
            branch_seq=dyn.seq,
        )
        self.spec_mode = True

    def recover(self) -> None:
        """Rewind to the checkpoint (called when the timing model
        resolves the mispredicted branch and squashes the wrong path)."""
        cp = self._checkpoint
        if cp is None:
            raise RuntimeError("recover() without an active checkpoint")
        self._regs = cp.regs
        self._tags = cp.tags
        self._from_load = cp.from_load
        self.fetch_index = cp.resume_index
        self.spec_memory.discard()
        self.spec_mode = False
        self._checkpoint = None

    # -- architected state access (for tests and workload verification) ---------------

    def reg(self, index: int) -> int:
        """Architected value of register ``index`` (test helper)."""
        return self._read(index)
