"""Thermal management: switching between the two optimizations.

Section 5 of the paper: "because the techniques share a common hardware
base, one could implement both and choose between them.  For example,
one could use thermal sensory data to have the processor switch between
the two techniques, depending on current thermal or performance
concerns.  Related but simpler approaches are already found in
commercial processors; for example, the IBM/Motorola PPC750 is equipped
with an on-chip thermal assist unit and temperature sensor which
responds to thermal emergencies."

This module implements that sketch: a first-order RC thermal model of
the integer unit driven by the power accountant's per-cycle numbers,
and a two-threshold (hysteretic) controller that runs in *packing* mode
(performance) while cool and falls back to *gating* mode (power) when
the sensor crosses the hot threshold — the PPC750-style thermal assist
policy applied to the paper's shared hardware base.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Mode(enum.Enum):
    """Which use of the shared narrow-width hardware is active."""

    PACKING = "packing"    # performance: merge narrow ops (Section 5)
    GATING = "gating"      # power: clock-gate narrow ops (Section 4)


@dataclass(frozen=True)
class ThermalConfig:
    """First-order RC package model + controller thresholds.

    Temperatures are in degrees Celsius; power in mW.  The defaults
    give a time constant of a few thousand cycles so mode switches are
    observable in short simulations while the dynamics stay physical
    (heating toward ``ambient + power * resistance``).
    """

    ambient_c: float = 45.0
    #: thermal resistance junction->ambient (C per mW)
    resistance_c_per_mw: float = 0.08
    #: exponential smoothing factor per evaluation interval (RC model)
    alpha: float = 0.02
    #: controller thresholds (hysteresis band)
    hot_c: float = 72.0
    cool_c: float = 65.0
    #: cycles between sensor evaluations
    interval_cycles: int = 256


class ThermalModel:
    """First-order thermal RC model driven by per-interval power."""

    def __init__(self, config: ThermalConfig | None = None) -> None:
        self.config = config or ThermalConfig()
        self.temperature_c = self.config.ambient_c

    def step(self, power_mw: float) -> float:
        """Advance one evaluation interval at the given average power;
        returns the new junction temperature."""
        cfg = self.config
        steady = cfg.ambient_c + power_mw * cfg.resistance_c_per_mw
        self.temperature_c += cfg.alpha * (steady - self.temperature_c)
        return self.temperature_c


@dataclass
class ThermalStats:
    intervals: int = 0
    switches: int = 0
    packing_intervals: int = 0
    gating_intervals: int = 0
    max_temperature_c: float = 0.0

    @property
    def packing_fraction(self) -> float:
        if not self.intervals:
            return 0.0
        return self.packing_intervals / self.intervals


class ThermalController:
    """Hysteretic mode controller over the shared hardware base.

    Call :meth:`observe` once per evaluation interval with the integer
    unit's average power over that interval; read :attr:`mode` to know
    which optimization should be active for the next interval.
    """

    def __init__(self, config: ThermalConfig | None = None) -> None:
        self.config = config or ThermalConfig()
        self.model = ThermalModel(self.config)
        self.mode = Mode.PACKING
        self.stats = ThermalStats()

    def observe(self, power_mw: float) -> Mode:
        temperature = self.model.step(power_mw)
        self.stats.intervals += 1
        self.stats.max_temperature_c = max(self.stats.max_temperature_c,
                                           temperature)
        if self.mode is Mode.PACKING and temperature >= self.config.hot_c:
            self.mode = Mode.GATING
            self.stats.switches += 1
        elif self.mode is Mode.GATING and temperature <= self.config.cool_c:
            self.mode = Mode.PACKING
            self.stats.switches += 1
        if self.mode is Mode.PACKING:
            self.stats.packing_intervals += 1
        else:
            self.stats.gating_intervals += 1
        return self.mode


@dataclass
class ThermalRunResult:
    """Outcome of a thermally managed run (see :func:`run_managed`)."""

    cycles: int
    committed: int
    stats: ThermalStats
    mean_power_mw: float

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


def run_managed(program, config=None, thermal: ThermalConfig | None = None,
                max_insts: int | None = None,
                warmup: int = 0) -> ThermalRunResult:
    """Simulate ``program`` under thermal management.

    The machine runs with packing enabled; every sensor interval the
    controller inspects integer-unit power and, when hot, switches the
    shared hardware into gating mode (packing disabled, gated power
    drawn) until the unit cools.  This models the paper's proposal of
    one hardware base serving both optimizations, time-multiplexed by a
    thermal assist unit.
    """
    from repro.core.config import BASELINE
    from repro.core.machine import Machine

    config = config or BASELINE
    thermal = thermal or ThermalConfig()
    controller = ThermalController(thermal)

    machine = Machine(program, config.with_packing(replay=True))
    if warmup:
        machine.fast_forward(warmup)
    # Gating-mode power is what the accountant reports as `gated`;
    # packing-mode power is the ungated baseline (units run full width).
    last = (0.0, 0.0, 0)   # (baseline_mw_total, gated_mw_total, cycles)
    energy_mw_cycles = 0.0
    target = max_insts

    while not machine.done and (target is None
                                or machine.stats.committed < target):
        for _ in range(thermal.interval_cycles):
            machine._step()
            if machine.done:
                break
        acc = machine.accountant
        baseline_delta = acc.baseline_total - last[0]
        gated_delta = acc.gated_total - last[1]
        cycle_delta = machine.stats.cycles - last[2]
        last = (acc.baseline_total, acc.gated_total, machine.stats.cycles)
        if cycle_delta == 0:
            break
        if controller.mode is Mode.PACKING:
            interval_power = baseline_delta / cycle_delta
        else:
            interval_power = gated_delta / cycle_delta
        energy_mw_cycles += interval_power * cycle_delta
        mode = controller.observe(interval_power)
        # Apply the mode to the shared hardware: packing on/off.
        machine.config = (config.with_packing(replay=True)
                          if mode is Mode.PACKING else config)

    cycles = machine.stats.cycles
    return ThermalRunResult(
        cycles=cycles,
        committed=machine.stats.committed,
        stats=controller.stats,
        mean_power_mw=energy_mw_cycles / cycles if cycles else 0.0,
    )
