"""Power accounting for the integer execution unit.

Reproduces the methodology of Section 4.4:

* **Baseline**: every executed integer-unit operation is charged the
  64-bit power of its device class ("we assume that all operations use
  the amount of power that a 64-bit device would use", with basic
  opcode-based gating between device classes already assumed).
* **Gated**: operations whose operand tags allow it run on a 16- or
  33-bit slice; the remainder is clock-gated off.
* **Overhead**: zero-detect power per produced result plus mux power
  per gated operation (Table 4's last two rows; Figure 6 "total extra
  used is the amount used by zero detection and muxing").

Per-cycle figures are obtained by dividing accumulated energy-per-op
totals by the cycle count, which equals the paper's "determining the
amount of power saved and expended per instruction executed and
multiplying by the average issue rate".

Accumulation is *count-based*: ``record_op`` only bumps integer bucket
counters, and every mW total is computed from the buckets in one
canonical order (sorted by class then width).  Totals are therefore a
pure function of the bucket counts — independent of the order
operations were recorded — which is what lets the vectorized trace
replay (:mod:`repro.fastsim`) reproduce them bit-exactly from a
``numpy`` histogram of the same buckets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bitwidth.detect import CUT_ADDRESS, CUT_NARROW
from repro.bitwidth.tags import WidthTag
from repro.isa.opcodes import OpClass
from repro.power.devices import (
    MUX_OVERHEAD_MW,
    ZERO_DETECT_MW,
    device_for,
    device_power,
)
from repro.power.gating import GatingPolicy, gate_width

#: Bucket keys per op class: the only gate widths that can occur.
_GATE_WIDTHS = (CUT_NARROW, CUT_ADDRESS, 64)


@dataclass
class PowerReport:
    """Final per-cycle power figures for one run (all mW per cycle)."""

    cycles: int
    baseline: float          # integer-unit power without our optimization
    gated: float             # with operand-based gating (incl. overhead)
    saved16: float           # saved by gating at the 16-bit cut (Fig. 6)
    saved33: float           # saved by gating at the 33-bit cut (Fig. 6)
    overhead: float          # zero-detect + mux power (Fig. 6 "extra used")
    ops_total: int
    ops_gated16: int
    ops_gated33: int
    load_dependent_gated: int   # gated ops with a load-produced operand

    @property
    def net_saved(self) -> float:
        """Figure 6's "net savings": saved16 + saved33 - overhead."""
        return self.saved16 + self.saved33 - self.overhead

    @property
    def reduction_pct(self) -> float:
        """Percent reduction of integer-unit power (Figure 7)."""
        if self.baseline == 0:
            return 0.0
        return 100.0 * (self.baseline - self.gated) / self.baseline

    @property
    def load_dependent_pct(self) -> float:
        """Percent of power-saving operations with >=1 operand straight
        from a load (the 13.1% / 1.5% statistic of Section 4.2)."""
        gated = self.ops_gated16 + self.ops_gated33
        if gated == 0:
            return 0.0
        return 100.0 * self.load_dependent_gated / gated

    def as_dict(self) -> dict:
        """JSON-friendly report including the derived figures
        (consumed by the obs run manifest)."""
        return {
            "cycles": self.cycles,
            "baseline_mw": self.baseline,
            "gated_mw": self.gated,
            "saved16_mw": self.saved16,
            "saved33_mw": self.saved33,
            "overhead_mw": self.overhead,
            "net_saved_mw": self.net_saved,
            "reduction_pct": self.reduction_pct,
            "ops_total": self.ops_total,
            "ops_gated16": self.ops_gated16,
            "ops_gated33": self.ops_gated33,
            "load_dependent_gated": self.load_dependent_gated,
            "load_dependent_pct": self.load_dependent_pct,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PowerReport":
        """Rebuild a report from an :meth:`as_dict` snapshot (the
        derived ``net_saved``/``reduction_pct``/``load_dependent_pct``
        figures are properties and come back for free)."""
        return cls(
            cycles=int(data["cycles"]),
            baseline=float(data["baseline_mw"]),
            gated=float(data["gated_mw"]),
            saved16=float(data["saved16_mw"]),
            saved33=float(data["saved33_mw"]),
            overhead=float(data["overhead_mw"]),
            ops_total=int(data["ops_total"]),
            ops_gated16=int(data["ops_gated16"]),
            ops_gated33=int(data["ops_gated33"]),
            load_dependent_gated=int(data["load_dependent_gated"]),
        )


@dataclass
class PowerAccountant:
    """Accumulates per-operation power during a simulation run.

    Only integer counters are touched per operation; the float totals
    (``baseline_total`` and friends) are properties derived canonically
    from the buckets, so two accountants with equal counts report
    bit-identical power no matter how the counts were produced.
    """

    policy: GatingPolicy = field(default_factory=GatingPolicy)

    ops_total: int = 0
    ops_gated16: int = 0
    ops_gated33: int = 0
    load_dependent_gated: int = 0
    #: produced results that paid the zero-detect (policy enabled only).
    results_detected: int = 0
    #: execution counts per (OpClass, gate width) — feeds Figures 4-6.
    class_width_counts: dict[tuple[OpClass, int], int] = field(
        default_factory=dict)

    def record_op(self, op_class: OpClass, tag_a: WidthTag, tag_b: WidthTag,
                  produces_result: bool = True,
                  operand_from_load: bool = False) -> int:
        """Account one executed integer-unit operation.

        Returns the gate width chosen (16, 33, or 64) so callers can
        reuse the decision.  ``operand_from_load`` marks operations with
        at least one source operand produced directly by a load.
        """
        if device_for(op_class) is None:
            return 64
        self.ops_total += 1
        width = gate_width(self.policy, tag_a, tag_b)
        key = (op_class, width)
        self.class_width_counts[key] = self.class_width_counts.get(key, 0) + 1
        if width == CUT_NARROW:
            self.ops_gated16 += 1
        elif width == CUT_ADDRESS:
            self.ops_gated33 += 1
        if width != 64 and operand_from_load:
            self.load_dependent_gated += 1
        if produces_result and self.policy.enabled:
            # The zero/ones-detect runs on every produced result to
            # create its width tag.
            self.results_detected += 1
        return width

    # ---------------------------------------------------- derived totals

    def _bucket_totals(self) -> tuple[float, float, float, float]:
        """(baseline, active, saved16, saved33) mW·ops from the buckets,
        summed in canonical (class value, width) order."""
        baseline = active = saved16 = saved33 = 0.0
        for (op_class, width), count in sorted(
                self.class_width_counts.items(),
                key=lambda item: (item[0][0].value, item[0][1])):
            device = device_for(op_class)
            base = device_power(device, 64)
            gated = device_power(device, width)
            baseline += count * base
            active += count * gated
            if width == CUT_NARROW:
                saved16 += count * (base - gated)
            elif width == CUT_ADDRESS:
                saved33 += count * (base - gated)
        return baseline, active, saved16, saved33

    @property
    def baseline_total(self) -> float:
        return self._bucket_totals()[0]

    @property
    def overhead_total(self) -> float:
        return ((self.ops_gated16 + self.ops_gated33) * MUX_OVERHEAD_MW
                + self.results_detected * ZERO_DETECT_MW)

    @property
    def gated_total(self) -> float:
        return self._bucket_totals()[1] + self.overhead_total

    @property
    def saved16_total(self) -> float:
        return self._bucket_totals()[2]

    @property
    def saved33_total(self) -> float:
        return self._bucket_totals()[3]

    # ----------------------------------------------------------- builders

    @classmethod
    def from_columns(cls, policy: GatingPolicy, class_codes, class_order,
                     gate_widths, produces, from_load) -> "PowerAccountant":
        """Vectorized twin of a :meth:`record_op` loop (trace replay).

        ``class_codes`` indexes ``class_order`` (a sequence of
        :class:`OpClass`); ``gate_widths`` holds the per-op gating
        decision (16/33/64); ``produces``/``from_load`` are boolean
        arrays.  Bucket counts — and therefore every derived total —
        equal those of an accountant fed the same operations one at a
        time, by construction.
        """
        import numpy as np

        codes = np.asarray(class_codes, dtype=np.int64)
        widths = np.asarray(gate_widths, dtype=np.int64)
        produces = np.asarray(produces, dtype=bool)
        from_load = np.asarray(from_load, dtype=bool)
        accounted = np.asarray(
            [device_for(c) is not None for c in class_order], dtype=bool)
        keep = accounted[codes]
        codes, widths = codes[keep], widths[keep]
        produces, from_load = produces[keep], from_load[keep]

        acc = cls(policy=policy)
        acc.ops_total = int(keep.sum())
        acc.ops_gated16 = int((widths == CUT_NARROW).sum())
        acc.ops_gated33 = int((widths == CUT_ADDRESS).sum())
        acc.load_dependent_gated = int(((widths != 64) & from_load).sum())
        acc.results_detected = int(produces.sum()) if policy.enabled else 0
        keys = codes * 65 + widths
        counts = np.bincount(keys, minlength=len(class_order) * 65)
        for key in np.flatnonzero(counts):
            bucket = (class_order[int(key) // 65], int(key) % 65)
            acc.class_width_counts[bucket] = int(counts[key])
        return acc

    def report(self, cycles: int) -> PowerReport:
        """Convert accumulated energy-per-op totals to per-cycle power."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        baseline, active, saved16, saved33 = self._bucket_totals()
        overhead = self.overhead_total
        return PowerReport(
            cycles=cycles,
            baseline=baseline / cycles,
            gated=(active + overhead) / cycles,
            saved16=saved16 / cycles,
            saved33=saved33 / cycles,
            overhead=overhead / cycles,
            ops_total=self.ops_total,
            ops_gated16=self.ops_gated16,
            ops_gated33=self.ops_gated33,
            load_dependent_gated=self.load_dependent_gated,
        )
