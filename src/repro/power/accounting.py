"""Power accounting for the integer execution unit.

Reproduces the methodology of Section 4.4:

* **Baseline**: every executed integer-unit operation is charged the
  64-bit power of its device class ("we assume that all operations use
  the amount of power that a 64-bit device would use", with basic
  opcode-based gating between device classes already assumed).
* **Gated**: operations whose operand tags allow it run on a 16- or
  33-bit slice; the remainder is clock-gated off.
* **Overhead**: zero-detect power per produced result plus mux power
  per gated operation (Table 4's last two rows; Figure 6 "total extra
  used is the amount used by zero detection and muxing").

Per-cycle figures are obtained by dividing accumulated energy-per-op
totals by the cycle count, which equals the paper's "determining the
amount of power saved and expended per instruction executed and
multiplying by the average issue rate".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bitwidth.detect import CUT_ADDRESS, CUT_NARROW
from repro.bitwidth.tags import WidthTag
from repro.isa.opcodes import OpClass
from repro.power.devices import (
    MUX_OVERHEAD_MW,
    ZERO_DETECT_MW,
    device_for,
    device_power,
)
from repro.power.gating import GatingPolicy, gate_width


@dataclass
class PowerReport:
    """Final per-cycle power figures for one run (all mW per cycle)."""

    cycles: int
    baseline: float          # integer-unit power without our optimization
    gated: float             # with operand-based gating (incl. overhead)
    saved16: float           # saved by gating at the 16-bit cut (Fig. 6)
    saved33: float           # saved by gating at the 33-bit cut (Fig. 6)
    overhead: float          # zero-detect + mux power (Fig. 6 "extra used")
    ops_total: int
    ops_gated16: int
    ops_gated33: int
    load_dependent_gated: int   # gated ops with a load-produced operand

    @property
    def net_saved(self) -> float:
        """Figure 6's "net savings": saved16 + saved33 - overhead."""
        return self.saved16 + self.saved33 - self.overhead

    @property
    def reduction_pct(self) -> float:
        """Percent reduction of integer-unit power (Figure 7)."""
        if self.baseline == 0:
            return 0.0
        return 100.0 * (self.baseline - self.gated) / self.baseline

    @property
    def load_dependent_pct(self) -> float:
        """Percent of power-saving operations with >=1 operand straight
        from a load (the 13.1% / 1.5% statistic of Section 4.2)."""
        gated = self.ops_gated16 + self.ops_gated33
        if gated == 0:
            return 0.0
        return 100.0 * self.load_dependent_gated / gated

    def as_dict(self) -> dict:
        """JSON-friendly report including the derived figures
        (consumed by the obs run manifest)."""
        return {
            "cycles": self.cycles,
            "baseline_mw": self.baseline,
            "gated_mw": self.gated,
            "saved16_mw": self.saved16,
            "saved33_mw": self.saved33,
            "overhead_mw": self.overhead,
            "net_saved_mw": self.net_saved,
            "reduction_pct": self.reduction_pct,
            "ops_total": self.ops_total,
            "ops_gated16": self.ops_gated16,
            "ops_gated33": self.ops_gated33,
            "load_dependent_gated": self.load_dependent_gated,
            "load_dependent_pct": self.load_dependent_pct,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PowerReport":
        """Rebuild a report from an :meth:`as_dict` snapshot (the
        derived ``net_saved``/``reduction_pct``/``load_dependent_pct``
        figures are properties and come back for free)."""
        return cls(
            cycles=int(data["cycles"]),
            baseline=float(data["baseline_mw"]),
            gated=float(data["gated_mw"]),
            saved16=float(data["saved16_mw"]),
            saved33=float(data["saved33_mw"]),
            overhead=float(data["overhead_mw"]),
            ops_total=int(data["ops_total"]),
            ops_gated16=int(data["ops_gated16"]),
            ops_gated33=int(data["ops_gated33"]),
            load_dependent_gated=int(data["load_dependent_gated"]),
        )


@dataclass
class PowerAccountant:
    """Accumulates per-operation power during a simulation run."""

    policy: GatingPolicy = field(default_factory=GatingPolicy)

    baseline_total: float = 0.0
    gated_total: float = 0.0
    saved16_total: float = 0.0
    saved33_total: float = 0.0
    overhead_total: float = 0.0
    ops_total: int = 0
    ops_gated16: int = 0
    ops_gated33: int = 0
    load_dependent_gated: int = 0
    #: execution counts per (OpClass, gate width) — feeds Figures 4-6.
    class_width_counts: dict[tuple[OpClass, int], int] = field(
        default_factory=dict)

    def record_op(self, op_class: OpClass, tag_a: WidthTag, tag_b: WidthTag,
                  produces_result: bool = True,
                  operand_from_load: bool = False) -> int:
        """Account one executed integer-unit operation.

        Returns the gate width chosen (16, 33, or 64) so callers can
        reuse the decision.  ``operand_from_load`` marks operations with
        at least one source operand produced directly by a load.
        """
        device = device_for(op_class)
        if device is None:
            return 64
        self.ops_total += 1
        base = device_power(device, 64)
        self.baseline_total += base
        width = gate_width(self.policy, tag_a, tag_b)
        active = device_power(device, width)
        self.gated_total += active
        key = (op_class, width)
        self.class_width_counts[key] = self.class_width_counts.get(key, 0) + 1
        if width == CUT_NARROW:
            self.ops_gated16 += 1
            self.saved16_total += base - active
        elif width == CUT_ADDRESS:
            self.ops_gated33 += 1
            self.saved33_total += base - active
        if width != 64:
            self.overhead_total += MUX_OVERHEAD_MW
            self.gated_total += MUX_OVERHEAD_MW
            if operand_from_load:
                self.load_dependent_gated += 1
        if produces_result and self.policy.enabled:
            # The zero/ones-detect runs on every produced result to
            # create its width tag.
            self.overhead_total += ZERO_DETECT_MW
            self.gated_total += ZERO_DETECT_MW
        return width

    def report(self, cycles: int) -> PowerReport:
        """Convert accumulated energy-per-op totals to per-cycle power."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        return PowerReport(
            cycles=cycles,
            baseline=self.baseline_total / cycles,
            gated=self.gated_total / cycles,
            saved16=self.saved16_total / cycles,
            saved33=self.saved33_total / cycles,
            overhead=self.overhead_total / cycles,
            ops_total=self.ops_total,
            ops_gated16=self.ops_gated16,
            ops_gated33=self.ops_gated33,
            load_dependent_gated=self.load_dependent_gated,
        )
