"""Operand-value-based clock gating (paper Section 4, Figure 3).

:class:`GatingPolicy` captures the configuration space the paper
explores:

* ``gate16`` — the base mechanism: gate the upper 48 bits when both
  operands are ≤16 bits (the ``zero48`` path of Figure 3);
* ``gate33`` — the second cut point added for address calculations
  (Section 4.3 / Figure 5);
* ``detect_loads`` — whether a cache-side zero detect tags incoming
  load data (Section 4.2 notes some processors cannot do this and
  quantifies the loss);
* ``operand_based`` — when False, models only the *prior-work* baseline
  (opcode-based gating, already assumed in the paper's baseline), an
  ablation knob.

:func:`gate_width` is the per-operation gating decision: given the
width tags of the two source operands, which functional-unit slice
stays on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bitwidth.detect import CUT_ADDRESS, CUT_NARROW
from repro.bitwidth.tags import WidthTag


@dataclass(frozen=True)
class GatingPolicy:
    """Configuration of the clock-gating hardware."""

    gate16: bool = True
    gate33: bool = True
    detect_loads: bool = True
    operand_based: bool = True

    @property
    def enabled(self) -> bool:
        return self.operand_based and (self.gate16 or self.gate33)


#: The paper's full proposal (both cut points, loads detected).
FULL_GATING = GatingPolicy()

#: Prior-work baseline: opcode-based gating only.
OPCODE_ONLY = GatingPolicy(gate16=False, gate33=False, operand_based=False)


def gate_width(policy: GatingPolicy, tag_a: WidthTag, tag_b: WidthTag) -> int:
    """Width of the functional-unit slice left running for an operation
    whose source operands carry tags ``tag_a`` and ``tag_b``.

    Returns 16, 33, or 64.  Both operands must be narrow for gating to
    apply (Figure 4 caption: "Both operands must be small in order for
    the clock gating to be allowed").
    """
    if not policy.enabled:
        return 64
    pair = tag_a.combine(tag_b)
    if policy.gate16 and pair.narrow16:
        return CUT_NARROW
    if policy.gate33 and pair.narrow33:
        return CUT_ADDRESS
    return 64
