"""Functional-unit power estimates — the paper's Table 4.

Values are mW at 3.3 V / 500 MHz, assuming dynamic logic and fast
carry-lookahead adders; the multiplier is pipelined "with its power
usage scaling linearly with the operand size" (Section 4.4).  Table 4
lists 32/48/64-bit columns that are linear in width, so intermediate
widths (the 16- and 33-bit gated slices) are interpolated linearly
through the origin, which reproduces the listed columns exactly.
"""

from __future__ import annotations

import enum

from repro.isa.opcodes import OpClass


class Device(enum.Enum):
    """Integer-unit datapath devices of Table 4."""

    ADDER = "adder"                # carry-lookahead adder
    MULTIPLIER = "multiplier"      # Booth multiplier
    LOGIC = "logic"                # bit-wise logic
    SHIFTER = "shifter"


#: Table 4, 64-bit column (mW).  The 32- and 48-bit columns follow from
#: linear width scaling: P(w) = P64 * w / 64.
POWER_64BIT_MW: dict[Device, float] = {
    Device.ADDER: 210.0,
    Device.MULTIPLIER: 2100.0,
    Device.LOGIC: 11.7,
    Device.SHIFTER: 8.8,
}

#: Table 4 overhead rows (mW): the zero-detect logic and the widened
#: result-bus muxes added by the gating architecture (Figure 3).
ZERO_DETECT_MW = 4.2
MUX_OVERHEAD_MW = 3.2

#: Which device each operation class exercises.  Memory and control
#: operations run their address/condition arithmetic on the adder
#: (Table 1: the integer ALUs perform "arithmetic, logical, shift,
#: memory, branch ops").
DEVICE_OF_CLASS: dict[OpClass, Device | None] = {
    OpClass.INT_ARITH: Device.ADDER,
    OpClass.INT_MULT: Device.MULTIPLIER,
    OpClass.INT_LOGIC: Device.LOGIC,
    OpClass.INT_SHIFT: Device.SHIFTER,
    OpClass.LOAD: Device.ADDER,
    OpClass.STORE: Device.ADDER,
    OpClass.BRANCH: Device.ADDER,
    OpClass.JUMP: Device.ADDER,
    OpClass.NOP: None,
    OpClass.HALT: None,
}


def device_power(device: Device, width: int) -> float:
    """Power (mW) of ``device`` operating on a ``width``-bit slice.

    ``device_power(d, 64)`` returns the Table 4 64-bit column;
    ``device_power(d, 32)`` returns its 32-bit column (linear scaling).
    """
    if not 0 < width <= 64:
        raise ValueError(f"width must be in 1..64, got {width}")
    return POWER_64BIT_MW[device] * width / 64.0


def device_for(op_class: OpClass) -> Device | None:
    """Device exercised by an operation class (None = no datapath work)."""
    return DEVICE_OF_CLASS[op_class]
