"""Clock-gating power model (paper Section 4, Table 4, Figures 3/6/7)."""

from repro.power.accounting import PowerAccountant, PowerReport
from repro.power.devices import (
    DEVICE_OF_CLASS,
    MUX_OVERHEAD_MW,
    POWER_64BIT_MW,
    ZERO_DETECT_MW,
    Device,
    device_for,
    device_power,
)
from repro.power.gating import (
    FULL_GATING,
    OPCODE_ONLY,
    GatingPolicy,
    gate_width,
)
from repro.power.thermal import (
    Mode,
    ThermalConfig,
    ThermalController,
    ThermalModel,
    run_managed,
)

__all__ = [
    "DEVICE_OF_CLASS",
    "Device",
    "FULL_GATING",
    "GatingPolicy",
    "MUX_OVERHEAD_MW",
    "OPCODE_ONLY",
    "POWER_64BIT_MW",
    "Mode",
    "PowerAccountant",
    "PowerReport",
    "ThermalConfig",
    "ThermalController",
    "ThermalModel",
    "ZERO_DETECT_MW",
    "device_for",
    "device_power",
    "gate_width",
    "run_managed",
]
