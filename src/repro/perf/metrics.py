"""Unified metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` per process replaces the scattered ad-hoc
counts that grew across the execution stack — engine attempts /
timeouts (:class:`~repro.exec.engine.EngineStats` keeps its public
shape and now mirrors into ``engine.*`` counters), cache hits / misses
/ quarantines, guard violations (``guards.*``), and chaos verdict
classifications (``chaos.*``) — and exports them as **one snapshot per
run** (``--metrics-out``; ``repro-bench`` embeds the snapshot in its
baseline documents).

Process safety is by *snapshot merge*, not shared memory: a pool
worker records into its own process-local registry during one job and
ships the snapshot back inside the job payload; the parent engine
merges it (:meth:`MetricsRegistry.merge`).  Merge semantics are
deterministic — counters and histogram buckets add, gauges keep the
maximum — so the merged registry is independent of worker scheduling.

Histograms use **fixed bucket boundaries chosen at creation** (never
adapted to the data), so two runs of the same suite bucket identically
and snapshots diff cleanly across sessions.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from pathlib import Path

#: Default histogram boundaries for wall-clock seconds: sub-ms to
#: minutes, fixed forever so snapshots stay diffable.
TIME_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 60.0, 150.0, 600.0,
)

#: Snapshot schema identifier.
SCHEMA = "repro-metrics/1"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError("counters only go up")
        self.value += delta


class Gauge:
    """A point-in-time value; merges by maximum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-boundary histogram: cumulative-free bucket counts plus
    sum and count (the last bucket is the implicit +inf overflow)."""

    __slots__ = ("name", "boundaries", "counts", "sum", "count")

    def __init__(self, name: str,
                 boundaries: tuple[float, ...] = TIME_BUCKETS) -> None:
        if list(boundaries) != sorted(boundaries) or not boundaries:
            raise ValueError("boundaries must be non-empty and sorted")
        self.name = name
        self.boundaries = tuple(float(b) for b in boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1


class MetricsRegistry:
    """A named collection of metrics with snapshot/merge semantics."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ---------------------------------------------------------- creation

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  boundaries: tuple[float, ...] = TIME_BUCKETS,
                  ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, boundaries)
        elif metric.boundaries != tuple(float(b) for b in boundaries):
            raise ValueError(
                f"histogram {name!r} re-declared with different "
                f"boundaries (fixed at creation for determinism)")
        return metric

    # ---------------------------------------------------- snapshot/merge

    def snapshot(self) -> dict:
        """The registry as one JSON-safe document."""
        return {
            "schema": SCHEMA,
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {
                    "boundaries": list(h.boundaries),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: dict | None) -> None:
        """Fold a snapshot (e.g. a pool worker's) into this registry.

        Counters and histogram buckets add; gauges keep the maximum;
        a histogram arriving with unknown boundaries is adopted as-is,
        one with mismatched boundaries is an error (fixed boundaries
        are the determinism contract).
        """
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, float(value)))
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, tuple(data["boundaries"]))
            if len(hist.counts) != len(data["counts"]):
                raise ValueError(
                    f"histogram {name!r} snapshot has "
                    f"{len(data['counts'])} buckets, registry has "
                    f"{len(hist.counts)}")
            for i, count in enumerate(data["counts"]):
                hist.counts[i] += int(count)
            hist.sum += float(data["sum"])
            hist.count += int(data["count"])

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ----------------------------------------------------------- export

    def write(self, path: str | Path, extra: dict | None = None) -> Path:
        """Write the snapshot (plus optional extra keys) as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = self.snapshot()
        if extra:
            doc.update(extra)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        return path


#: The process-wide registry.  Pool workers get their own copy of this
#: module (fresh process) and ship per-job deltas back for merging, so
#: the parent's registry accumulates the whole suite.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (engine, guards, and chaos feed it)."""
    return _REGISTRY


def reset_registry() -> None:
    """Drop every metric in the process-wide registry (tests)."""
    _REGISTRY.clear()
