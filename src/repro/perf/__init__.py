"""Performance observability: tracing, metrics, profiling, benchmarks.

This package is the *measurement substrate* of the host-side execution
stack (the simulated machine's own instruments live in
:mod:`repro.obs`).  Four layers:

* :mod:`repro.perf.clock` — the only place the harness reads the wall
  clock.  The lint-gated packages (``repro.core``, ``repro.exec``) call
  these shims instead of :mod:`time` so the nondeterminism lint
  (ND002) stays clean and the simulated *results* provably never
  depend on the clock — only the measurement metadata does.
* :mod:`repro.perf.trace` — a structured span tracer threaded through
  the :class:`~repro.exec.engine.RunEngine`, exporting Chrome
  trace-event JSON loadable in ``chrome://tracing`` / Perfetto.
* :mod:`repro.perf.metrics` — a process-safe metrics registry
  (counters / gauges / histograms with fixed bucket boundaries) that
  unifies the engine, cache, guard, and chaos counters into one
  exported snapshot per run; worker processes return snapshot deltas
  that merge into the parent's registry.
* :mod:`repro.perf.profiler` — an opt-in hot-loop phase profiler for
  :class:`~repro.core.machine.Machine`: per-pipeline-stage and
  per-subsystem wall-clock attribution whose report is the prioritized
  target list for the fast-backend work.  Detached machines run the
  exact pre-profiler code path.

``repro-bench`` (:mod:`repro.perf.bench`) pins all of it to recorded
baselines: a benchmark matrix written as schema-versioned
``BENCH_<timestamp>.json`` files and diffed against a committed
baseline with a configurable regression threshold.

Dependency rule: :mod:`repro.perf` imports nothing from
:mod:`repro.exec` or :mod:`repro.robust` (both import *us*); only
:mod:`repro.perf.bench` — a leaf CLI — may import the wider repo.
"""

from repro.perf.clock import epoch_now, perf_now
from repro.perf.metrics import (
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.perf.profiler import PhaseProfiler
from repro.perf.trace import Span, SpanTracer, write_chrome_trace

__all__ = [
    "MetricsRegistry",
    "PhaseProfiler",
    "Span",
    "SpanTracer",
    "epoch_now",
    "get_registry",
    "perf_now",
    "reset_registry",
    "write_chrome_trace",
]
