"""``repro-bench``: the pinned benchmark matrix and regression harness.

Measures, for a pinned set of workloads, the numbers the ROADMAP's
fast-backend work is judged by:

* **simulation speed** — cycles/sec and committed insts/sec per
  workload for **both backends** — the reference machine and the
  two-phase fast backend (:mod:`repro.fastsim`) — measured in the same
  run (best-of-N over interleaved repeats, same discipline as
  ``benchmarks/``: best-of defeats scheduler noise, interleaving
  defeats thermal drift), plus the in-run fast-over-reference speedup;
* **engine throughput** — wall-clock for the same job batch cold
  (fresh simulation + cache store) and warm (disk-cache recall), and
  the resulting speedup;
* **obs overhead** — the cost ratio of running fully observed
  (sampler + stall attribution) versus bare.

Results land in a schema-versioned ``BENCH_<timestamp>.json`` carrying
a host fingerprint (platform, python, cpu count) and the baseline
machine-config fingerprint, plus the process metrics snapshot.  A
committed baseline (``benchmarks/BENCH_baseline.json``) makes the
harness a regression gate::

    repro-bench --quick --against benchmarks/BENCH_baseline.json

``--against`` diffs cycles/sec per workload — for both backends — and
exits nonzero when any falls more than ``--threshold`` (default 0.25)
below the baseline.  ``--fast-floor`` additionally gates the in-run
fast-backend speedup: every workload's fast backend must beat the
reference by at least the floor, measured in *this* run (so the gate
cannot be satisfied by a stale baseline).  Host fingerprints rarely
match across machines — the diff *warns* on a mismatch (to stderr)
rather than failing, and the generous default threshold is what
absorbs cross-host variance.

This is the one :mod:`repro.perf` module allowed to import the wider
repo (engine, workloads): it is a leaf CLI, imported by nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

from repro.perf.clock import epoch_now, perf_now
from repro.perf.metrics import get_registry

#: Benchmark document schema.  ``/2`` added the fast-backend columns
#: (``fast_*``, ``fast_speedup``) to every workload row; ``/3`` added
#: ``memo_hit_rate`` (fraction of fast-backend fetched instructions
#: served by proof-carrying block memoization).
SCHEMA = "repro-bench/3"

#: The pinned default matrix: one SPEC-style integer workload, one
#: compression kernel, one MediaBench kernel — small enough for CI,
#: diverse enough to catch a regression that hits only one pipeline mix.
DEFAULT_WORKLOADS = ("go", "compress", "g721-encode")

#: Regression threshold for --against (fraction of baseline
#: cycles/sec a workload may lose before the diff fails).
DEFAULT_THRESHOLD = 0.25

#: Minimum in-run fast-backend speedup (fast cycles/sec over reference
#: cycles/sec, same run) before ``--fast-floor`` fails.  Measured
#: serial full-window speedups on an idle development host are
#: 4.7-5.5x (compress the slowest, g721-encode the fastest); block
#: memoization is bit-exact but roughly cost-neutral on top of that —
#: memo-safe bodies are 2-3 instructions, and the timing stages the
#: replay must still run dominate per-entry cost — so the floor is NOT
#: raised above what the un-memoized path clears.  3.0 leaves ~35%
#: headroom under the slowest measured workload so shared CI runners
#: with noisy neighbours don't flake, while still catching any change
#: that erodes the fast path back toward interpreter speed.
DEFAULT_FAST_FLOOR = 3.0


def host_fingerprint() -> dict:
    """Where these numbers were measured (never *what* was measured —
    results must not depend on any of this)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


# ------------------------------------------------------------ measurement

def _sim_once(workload_name: str, scale: int, window: int | None,
              observed: bool, backend: str = "reference") -> dict:
    """One fresh simulation; returns cycles/committed/wall_seconds.

    ``backend`` picks the simulator (``"reference"`` or ``"fast"``);
    the timed region is identical for both — ``machine.run`` only, with
    construction and warmup outside, so the fast backend's phase-2
    replay is *inside* the measurement and the speedup is honest.
    """
    from repro.core.config import BASELINE
    from repro.core.machine import Machine
    from repro.obs.sampler import IntervalSampler
    from repro.workloads.registry import get_workload, resolve_warmup

    workload = get_workload(workload_name)
    if backend == "fast":
        from repro.fastsim.machine import FastMachine
        machine = FastMachine(workload.build(scale), BASELINE)
    else:
        machine = Machine(workload.build(scale), BASELINE)
    if observed:
        sampler = IntervalSampler(window=BASELINE.obs.sampler_window)
        machine.add_probe(sampler)
        machine.enable_stall_attribution()
    machine.fast_forward(resolve_warmup(workload, scale))
    t0 = perf_now()
    result = machine.run(max_insts=window or workload.window)
    wall = perf_now() - t0
    out = {"cycles": result.stats.cycles,
           "committed": result.stats.committed,
           "wall_seconds": wall}
    if backend == "fast":
        out["memo_hit_rate"] = machine.memo_stats()["hit_rate"]
    return out


def bench_workloads(workloads: tuple[str, ...], scale: int,
                    window: int | None, repeats: int,
                    log=print) -> dict:
    """Best-of-``repeats`` simulation speed per workload, interleaved,
    for the reference machine and the fast backend in the same run."""
    walls: dict[str, list[float]] = {name: [] for name in workloads}
    fast_walls: dict[str, list[float]] = {name: [] for name in workloads}
    shape: dict[str, dict] = {}
    for rep in range(repeats):
        for name in workloads:
            log(f"[bench] sim {name} (repeat {rep + 1}/{repeats})")
            run = _sim_once(name, scale, window, observed=False)
            walls[name].append(run["wall_seconds"])
            shape[name] = run
            fast = _sim_once(name, scale, window, observed=False,
                             backend="fast")
            fast_walls[name].append(fast["wall_seconds"])
            shape[name]["memo_hit_rate"] = fast["memo_hit_rate"]
            if (fast["cycles"], fast["committed"]) != \
                    (run["cycles"], run["committed"]):
                # The equivalence matrix is the real gate; this is the
                # bench refusing to time two different simulations.
                raise RuntimeError(
                    f"{name}: fast backend shape diverges from "
                    f"reference (cycles {fast['cycles']} vs "
                    f"{run['cycles']}, committed {fast['committed']} "
                    f"vs {run['committed']})")
    out = {}
    for name in workloads:
        best = min(walls[name])
        fast_best = min(fast_walls[name])
        cycles = shape[name]["cycles"]
        committed = shape[name]["committed"]
        out[name] = {
            "cycles": cycles,
            "committed": committed,
            "wall_seconds": round(best, 4),
            "cycles_per_sec": round(cycles / best, 1),
            "insts_per_sec": round(committed / best, 1),
            "fast_wall_seconds": round(fast_best, 4),
            "fast_cycles_per_sec": round(cycles / fast_best, 1),
            "fast_insts_per_sec": round(committed / fast_best, 1),
            "fast_speedup": round(best / fast_best, 2),
            "memo_hit_rate": shape[name]["memo_hit_rate"],
        }
    return out


def bench_engine(workloads: tuple[str, ...], scale: int,
                 log=print) -> dict:
    """Cold-versus-warm engine throughput over one job batch.

    Uses a throwaway cache directory: cold pays fresh simulation plus
    serialization and cache store, warm pays only disk recall.
    """
    import tempfile

    from repro.core.config import BASELINE
    from repro.exec.context import RunContext
    from repro.exec.engine import RunEngine, clear_memo
    from repro.exec.jobs import Job

    jobs = [Job(workload=name, config=BASELINE, scale=scale)
            for name in workloads]
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        ctx = RunContext(cache_dir=Path(tmp) / "cache", jobs=1)
        clear_memo()
        log(f"[bench] engine cold ({len(jobs)} jobs)")
        t0 = perf_now()
        RunEngine(ctx).run_jobs(jobs)
        cold = perf_now() - t0
        clear_memo()   # force the disk tier, not the memo
        log("[bench] engine warm (disk recall)")
        t0 = perf_now()
        engine = RunEngine(ctx)
        engine.run_jobs(jobs)
        warm = perf_now() - t0
        assert engine.stats.fresh_runs == 0, "warm run was not warm"
    clear_memo()
    return {
        "jobs": len(jobs),
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "warm_speedup": round(cold / warm, 1) if warm > 0 else None,
    }


def bench_obs_overhead(workload: str, scale: int, window: int | None,
                       repeats: int, log=print) -> dict:
    """Observed-versus-bare cost ratio for one workload (interleaved
    best-of-``repeats``)."""
    bare: list[float] = []
    observed: list[float] = []
    for rep in range(repeats):
        log(f"[bench] obs overhead {workload} "
            f"(repeat {rep + 1}/{repeats})")
        bare.append(_sim_once(workload, scale, window,
                              observed=False)["wall_seconds"])
        observed.append(_sim_once(workload, scale, window,
                                  observed=True)["wall_seconds"])
    best_bare, best_obs = min(bare), min(observed)
    return {
        "workload": workload,
        "bare_seconds": round(best_bare, 4),
        "observed_seconds": round(best_obs, 4),
        "overhead": round(best_obs / best_bare - 1.0, 4),
    }


# ----------------------------------------------------------------- diffing

def diff_against(current: dict, baseline: dict,
                 threshold: float) -> tuple[list[str], list[str]]:
    """Compare cycles/sec per workload; returns (notes, regressions).

    A workload regresses when its cycles/sec falls more than
    ``threshold`` below the baseline's.  Schema mismatch is a
    regression (the numbers are not comparable); host-fingerprint
    mismatch is a note (expected across machines).
    """
    notes: list[str] = []
    regressions: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        regressions.append(
            f"schema mismatch: baseline {baseline.get('schema')!r} vs "
            f"current {current.get('schema')!r}")
        return notes, regressions
    if baseline.get("host") != current.get("host"):
        notes.append("host fingerprint differs from baseline "
                     "(cross-host comparison; threshold absorbs this)")
    base_workloads = baseline.get("workloads", {})
    for name, row in sorted(current.get("workloads", {}).items()):
        base = base_workloads.get(name)
        if base is None:
            notes.append(f"{name}: not in baseline, skipped")
            continue
        for column, label in (("cycles_per_sec", "cycles/sec"),
                              ("fast_cycles_per_sec",
                               "fast cycles/sec")):
            old = base.get(column)
            new = row.get(column)
            if old is None or new is None:
                continue   # pre-fast-backend baselines lack fast_*
            ratio = new / old if old else 0.0
            line = (f"{name}: {old:,.0f} -> {new:,.0f} {label} "
                    f"({ratio - 1.0:+.1%})")
            if ratio < 1.0 - threshold:
                regressions.append(line
                                   + f"  [> {threshold:.0%} regression]")
            else:
                notes.append(line)
    missing = sorted(set(base_workloads) - set(current.get("workloads", {})))
    for name in missing:
        notes.append(f"{name}: in baseline but not measured this run")
    return notes, regressions


def check_fast_floor(doc: dict, floor: float) -> list[str]:
    """The in-run fast-backend speedup gate; returns failure lines.

    Unlike ``--against``, this compares the two backends *within the
    same run* — host speed cancels out, so the gate is meaningful on
    any machine without a baseline.  ``floor <= 0`` disables it.
    """
    failures: list[str] = []
    if floor <= 0:
        return failures
    for name, row in sorted(doc.get("workloads", {}).items()):
        speedup = row.get("fast_speedup")
        if speedup is None:
            failures.append(f"{name}: no fast-backend measurement in "
                            f"this document")
        elif speedup < floor:
            failures.append(f"{name}: fast backend only "
                            f"{speedup:.2f}x over reference "
                            f"(floor {floor:.2f}x)")
    return failures


# --------------------------------------------------------------------- CLI

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the pinned benchmark matrix, write a "
                    "BENCH_<timestamp>.json baseline, and optionally "
                    "diff it against a committed baseline.")
    parser.add_argument("--workloads", nargs="+",
                        default=list(DEFAULT_WORKLOADS), metavar="NAME",
                        help="workload matrix (default: "
                             + " ".join(DEFAULT_WORKLOADS) + ")")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="interleaved repeats per measurement; the "
                             "best is kept (default 3)")
    parser.add_argument("--window", type=int, default=None,
                        metavar="INSTS",
                        help="cap the detailed-simulation window "
                             "(committed instructions; default: each "
                             "workload's own window)")
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: 2 repeats, 10000-instruction "
                             "window, skip the engine cold/warm pass")
    parser.add_argument("--out-dir", type=Path, default=Path("."),
                        metavar="DIR",
                        help="where BENCH_<timestamp>.json is written "
                             "(default: current directory)")
    parser.add_argument("--against", type=Path, default=None,
                        metavar="BASELINE",
                        help="diff cycles/sec against this committed "
                             "BENCH_*.json; exit nonzero on regression")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD, metavar="FRAC",
                        help=f"allowed cycles/sec loss before --against "
                             f"fails (default {DEFAULT_THRESHOLD})")
    parser.add_argument("--fast-floor", type=float,
                        default=DEFAULT_FAST_FLOOR, metavar="X",
                        help=f"minimum in-run fast-backend speedup per "
                             f"workload before the run fails "
                             f"(0 disables; default "
                             f"{DEFAULT_FAST_FLOOR})")
    return parser


def run_matrix(workloads: tuple[str, ...], scale: int,
               window: int | None, repeats: int, quick: bool,
               log=print) -> dict:
    """Execute the full matrix; returns the benchmark document."""
    doc = {
        "schema": SCHEMA,
        "generated": datetime.fromtimestamp(
            epoch_now(), tz=timezone.utc).isoformat(timespec="seconds"),
        "host": host_fingerprint(),
        "quick": quick,
        "repeats": repeats,
        "scale": scale,
        "window": window,
        "workloads": bench_workloads(workloads, scale, window, repeats,
                                     log=log),
        "obs_overhead": bench_obs_overhead(workloads[0], scale, window,
                                           repeats, log=log),
        "engine": (None if quick
                   else bench_engine(workloads, scale, log=log)),
    }
    from repro.core.config import BASELINE
    doc["config_fingerprint"] = BASELINE.fingerprint()
    doc["metrics"] = get_registry().snapshot()
    return doc


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if not 0 < args.threshold < 1:
        parser.error("--threshold must be in (0, 1)")
    repeats = 2 if args.quick else args.repeats
    window = 10_000 if args.quick and args.window is None else args.window

    def log(message: str) -> None:
        print(message, file=sys.stderr, flush=True)

    doc = run_matrix(tuple(args.workloads), args.scale, window,
                     repeats, args.quick, log=log)

    stamp = datetime.fromtimestamp(epoch_now(), tz=timezone.utc)
    out = args.out_dir / f"BENCH_{stamp:%Y%m%dT%H%M%SZ}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")

    for name, row in sorted(doc["workloads"].items()):
        print(f"{name:16s} {row['cycles_per_sec']:>12,.0f} cycles/sec "
              f"{row['insts_per_sec']:>12,.0f} insts/sec "
              f"({row['wall_seconds']:.2f}s best of {repeats})")
        print(f"{'  fast backend':16s} "
              f"{row['fast_cycles_per_sec']:>12,.0f} cycles/sec "
              f"{row['fast_insts_per_sec']:>12,.0f} insts/sec "
              f"({row['fast_wall_seconds']:.2f}s, "
              f"{row['fast_speedup']:.1f}x, "
              f"memo {row['memo_hit_rate']:.1%})")
    overhead = doc["obs_overhead"]
    print(f"{'obs overhead':16s} {overhead['overhead']:+12.1%} "
          f"({overhead['workload']}: {overhead['bare_seconds']:.2f}s "
          f"bare, {overhead['observed_seconds']:.2f}s observed)")
    if doc["engine"] is not None:
        engine = doc["engine"]
        print(f"{'engine':16s} cold {engine['cold_seconds']:.2f}s, "
              f"warm {engine['warm_seconds']:.2f}s "
              f"({engine['warm_speedup']}x speedup, "
              f"{engine['jobs']} jobs)")
    print(f"wrote {out}")

    failures = 0
    floor_failures = check_fast_floor(doc, args.fast_floor)
    for failure in floor_failures:
        print(f"  FAST-FLOOR {failure}", file=sys.stderr)
    failures += len(floor_failures)

    if args.against is not None:
        baseline = json.loads(args.against.read_text(encoding="utf-8"))
        notes, regressions = diff_against(doc, baseline, args.threshold)
        print(f"\ndiff vs {args.against} "
              f"(threshold {args.threshold:.0%}):")
        for note in notes:
            # Host-fingerprint drift is diagnostic context, not a
            # result: keep it off stdout so tooling that parses the
            # diff never mistakes it for a measurement row.
            if "host fingerprint" in note:
                print(f"  {note}", file=sys.stderr)
            else:
                print(f"  {note}")
        for regression in regressions:
            print(f"  REGRESSION {regression}", file=sys.stderr)
        failures += len(regressions)
        if not regressions:
            print("  ok")
    if failures:
        print(f"FAIL: {failures} gate failure(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
