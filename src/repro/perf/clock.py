"""Wall-clock shims: the harness's only clock readers.

The nondeterminism lint (``tools/lint_invariants.py``, ND002) bans
``time.*()`` calls from the simulator core and the run engine because
simulation *results* must be a pure function of (program, config,
seed).  Measurement *metadata* — span timings, per-job wall-clock,
benchmark numbers — legitimately needs the clock, so those packages
call these named shims instead: the intent is explicit at every call
site, the lint stays clean without suppression comments, and grepping
for ``perf_now``/``epoch_now`` enumerates every timing touchpoint.

Nothing timed through this module may flow into a cached result, a
figure, or any other replay-compared artifact.
"""

from __future__ import annotations

import time

__all__ = ["epoch_now", "mono_now", "perf_now"]


def perf_now() -> float:
    """High-resolution monotonic seconds (``time.perf_counter``).

    Comparable only within one process — use for durations and for
    span start/end pairs recorded by the same tracer.
    """
    return time.perf_counter()


def mono_now() -> float:
    """Monotonic seconds (``time.monotonic``).

    For deadlines, timeouts, and condition-variable waits — operational
    control flow that may never influence a simulation result.  Coarser
    than :func:`perf_now`; use that one for measurements.
    """
    return time.monotonic()


def epoch_now() -> float:
    """Unix-epoch seconds (``time.time``).

    Coarser than :func:`perf_now` but roughly comparable *across*
    processes — pool workers stamp their execution phases with it so
    the parent's tracer can place worker spans on its own timeline.
    """
    return time.time()
