"""Structured span tracing with Chrome trace-event export.

A :class:`SpanTracer` records a tree of named, timed spans for one
engine batch: schedule, per-job queue-wait, worker execute (with its
warmup / run / serialize phases), cache store / hit / quarantine, and
retry / backoff / requeue rounds.  The result exports as Chrome
trace-event JSON (:func:`write_chrome_trace`) loadable in
``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_, and the
span IDs cross-link into the obs run manifests (a ``trace`` record in
the JSONL stream names the span that produced the run).

Two clock domains feed one timeline:

* the tracer's own spans use :func:`repro.perf.clock.perf_now`
  (monotonic, parent process only), rebased to the tracer's creation;
* pool workers stamp their phases with
  :func:`repro.perf.clock.epoch_now` (comparable across processes);
  :meth:`SpanTracer.add_epoch` rebases those onto the same timeline.

Span **identity is deterministic**: IDs are sequential in recording
order, and the engine records spans in job-submission order, so two
identical warm-cache runs produce *structurally identical* span trees
(:meth:`SpanTracer.structure` — names, categories, parentage, and
stable args, with timestamps and host pids masked out).  The
regression tests and the ``--trace-out`` accounting check
(:meth:`SpanTracer.accounting` versus the engine's
:class:`~repro.robust.report.RunReport`) both lean on this.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.perf.clock import epoch_now, perf_now

#: Trace document schema (the ``otherData.schema`` key of the export).
SCHEMA = "repro-trace/1"

#: Chrome trace-event lane for parent-process (engine) spans.
ENGINE_PID = 0


@dataclass
class Span:
    """One completed span on the tracer's timeline."""

    id: int
    name: str
    cat: str
    start: float            # seconds since tracer creation
    end: float
    parent: int | None = None
    pid: int = ENGINE_PID   # trace lane (0 = engine, worker pid otherwise)
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanTracer:
    """Collects one span tree; cheap enough to always pass around.

    Engine code guards every recording site with ``if tracer is not
    None`` — an untraced run allocates nothing, mirroring the machine's
    event-bus contract.
    """

    def __init__(self) -> None:
        self._t0 = perf_now()
        self._epoch0 = epoch_now()
        self.spans: list[Span] = []
        self._next_id = 1
        self._open: dict[int, Span] = {}
        self._stack: list[int] = []

    # ------------------------------------------------------------ clocks

    def now(self) -> float:
        """Current time on the tracer's own timeline (seconds)."""
        return perf_now() - self._t0

    def rel_perf(self, t: float) -> float:
        """Rebase a raw :func:`perf_now` timestamp onto the timeline."""
        return t - self._t0

    def rel_epoch(self, t: float) -> float:
        """Rebase a raw :func:`epoch_now` timestamp onto the timeline."""
        return t - self._epoch0

    # --------------------------------------------------------- recording

    def begin(self, name: str, cat: str = "engine",
              parent: int | None = None, **args) -> int:
        """Open a span; returns its id.  Opened spans nest: a span
        begun while another is open becomes its child unless ``parent``
        is given explicitly."""
        span = Span(id=self._next_id, name=name, cat=cat,
                    start=self.now(), end=0.0,
                    parent=(parent if parent is not None
                            else (self._stack[-1] if self._stack else None)),
                    args=dict(args))
        self._next_id += 1
        self._open[span.id] = span
        self._stack.append(span.id)
        return span.id

    def end(self, span_id: int, **args) -> Span:
        """Close an open span (extra args merge into the span's)."""
        span = self._open.pop(span_id)
        span.end = self.now()
        if args:
            span.args.update(args)
        if self._stack and self._stack[-1] == span_id:
            self._stack.pop()
        else:           # out-of-order close: drop it wherever it sits
            self._stack = [s for s in self._stack if s != span_id]
        self.spans.append(span)
        return span

    def span(self, name: str, cat: str = "engine", **args):
        """Context manager: ``with tracer.span("schedule"): ...``"""
        return _SpanContext(self, name, cat, args)

    def add_perf(self, name: str, cat: str, start: float, end: float,
                 parent: int | None = None, pid: int = ENGINE_PID,
                 **args) -> int:
        """Record a completed span from raw :func:`perf_now` stamps."""
        return self._add(name, cat, self.rel_perf(start),
                         self.rel_perf(end), parent, pid, args)

    def add_epoch(self, name: str, cat: str, start: float, end: float,
                  parent: int | None = None, pid: int = ENGINE_PID,
                  **args) -> int:
        """Record a completed span from raw :func:`epoch_now` stamps
        (the pool-worker clock domain)."""
        return self._add(name, cat, self.rel_epoch(start),
                         self.rel_epoch(end), parent, pid, args)

    def add_rel(self, name: str, cat: str, start: float, end: float,
                parent: int | None = None, pid: int = ENGINE_PID,
                **args) -> int:
        """Record a completed span from timeline-relative stamps
        (pairs of :meth:`now` values)."""
        return self._add(name, cat, start, end, parent, pid, args)

    def instant(self, name: str, cat: str = "engine",
                parent: int | None = None, **args) -> int:
        """Record a zero-duration marker span (e.g. a quarantine)."""
        now = self.now()
        return self._add(name, cat, now, now, parent, ENGINE_PID, args)

    def _add(self, name: str, cat: str, start: float, end: float,
             parent: int | None, pid: int, args: dict) -> int:
        parent = (parent if parent is not None
                  else (self._stack[-1] if self._stack else None))
        span = Span(id=self._next_id, name=name, cat=cat, start=start,
                    end=max(end, start), parent=parent, pid=pid,
                    args=dict(args))
        self._next_id += 1
        self.spans.append(span)
        return span.id

    # ----------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def of_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def accounting(self) -> dict[str, int]:
        """Span count per name — the engine's job/attempt accounting
        cross-check: ``execute`` spans must equal total attempts,
        ``cache.hit`` spans the cache-tier outcomes, and so on."""
        counts: dict[str, int] = {}
        for span in self.spans:
            counts[span.name] = counts.get(span.name, 0) + 1
        return counts

    def structure(self) -> list[dict]:
        """The span tree with every volatile field masked: names,
        categories, parent links, and stable args only — what two
        identical warm-cache runs must agree on exactly."""
        ordered = sorted(self.spans, key=lambda s: s.id)
        return [{
            "name": s.name,
            "cat": s.cat,
            "parent": s.parent,
            "args": {k: v for k, v in sorted(s.args.items())
                     if k not in _VOLATILE_ARGS},
        } for s in ordered]


#: Span args that legitimately differ between identical runs (timings,
#: host identifiers) and are excluded from :meth:`SpanTracer.structure`.
_VOLATILE_ARGS = frozenset({"seconds", "wall_seconds", "pid", "delay"})


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_cat", "_args", "_id")

    def __init__(self, tracer: SpanTracer, name: str, cat: str,
                 args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> int:
        self._id = self._tracer.begin(self._name, self._cat, **self._args)
        return self._id

    def __exit__(self, *exc) -> None:
        self._tracer.end(self._id)


# ------------------------------------------------------------------ export

def chrome_trace_events(tracer: SpanTracer) -> list[dict]:
    """The tracer's spans as Chrome trace-event objects (``ph: "X"``
    complete events, microsecond timestamps), plus process-name
    metadata so Perfetto labels the engine and worker lanes."""
    events: list[dict] = []
    pids = sorted({s.pid for s in tracer.spans})
    for pid in pids:
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": ("engine" if pid == ENGINE_PID
                              else f"worker-{pid}")},
        })
    for span in sorted(tracer.spans, key=lambda s: (s.start, s.id)):
        args = dict(span.args)
        args["span_id"] = span.id
        if span.parent is not None:
            args["parent_id"] = span.parent
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.cat,
            "ts": round(span.start * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": span.pid,
            "tid": 0,
            "args": args,
        })
    return events


def write_chrome_trace(path: str | Path, tracer: SpanTracer,
                       metadata: dict | None = None) -> Path:
    """Write the span tree as a Chrome trace JSON file.

    Load the result in ``chrome://tracing`` or https://ui.perfetto.dev
    — no screenshots needed: every span carries its ``span_id`` /
    ``parent_id`` in its args for cross-referencing with the obs
    manifests.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"schema": SCHEMA, **(metadata or {})},
    }
    path.write_text(json.dumps(doc, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def read_chrome_trace(path: str | Path) -> dict:
    """Load a trace written by :func:`write_chrome_trace`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
