"""Hot-loop phase profiler for the simulated machine.

Where do the wall-clock seconds of a simulation go?  The ROADMAP's
fast-backend refactor needs a *prioritized* answer, not a guess.  A
:class:`PhaseProfiler` attaches to one live
:class:`~repro.core.machine.Machine` and attributes wall-clock to:

* the five **pipeline stages** — fetch, dispatch, issue, writeback,
  commit (``stage.*``), plus the whole-cycle total (``cycle``);
* the measurement **subsystems** the paper's instruments ride on —
  functional feed execution (``subsys.feed``), width detection and the
  width histogram (``subsys.width_detect`` / ``subsys.width_hist``),
  operand-fluctuation tracking, power accounting, packing decisions,
  and memory-hierarchy accesses.

Attachment is pure **instance-level method wrapping** (plus a
module-global patch of the packing helpers, which are free functions
in the machine's namespace): a machine that never calls
``enable_profiling()`` executes byte-for-byte the same code as before
this module existed — the disabled path is zero-cost the same way the
PR-1 event bus is, and ``benchmarks/test_perf_overhead.py`` holds that
line.  :meth:`detach` restores every wrapped attribute and module
global exactly, so results from a once-profiled machine stay
bit-exact.  Wall-clock is *almost* restored: CPython materializes an
object's split-keys ``__dict__`` when the wrappers are installed and
never reverts it, leaving attribute lookups on a once-profiled
machine ~10% slower — timing-sensitive comparisons should use a fresh
machine, not a detached one.

Caveats: phase times are *inclusive* (``cycle`` contains the stages;
``stage.issue`` contains packing/width/power subsystem time) and carry
the ``perf_counter`` call overhead of the wrappers themselves — use
the report to *rank* targets, not as absolute microbenchmarks.  The
packing-helper patch is process-global while attached; profile one
machine at a time.
"""

from __future__ import annotations

from typing import Callable

from repro.perf.clock import perf_now

#: Pipeline-stage methods wrapped on attach, in stage order.
STAGE_PHASES: tuple[tuple[str, str], ...] = (
    ("_fetch", "stage.fetch"),
    ("_dispatch", "stage.dispatch"),
    ("_issue", "stage.issue"),
    ("_writeback", "stage.writeback"),
    ("_commit", "stage.commit"),
)

#: Packing helpers (module-level functions in the machine's namespace)
#: timed under ``subsys.packing`` while a profiler is attached.
_PACKING_GLOBALS = ("try_join", "open_pack", "replay_overflows")


class PhaseProfiler:
    """Accumulates per-phase wall-clock for one attached machine."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        self._machine = None
        #: (owner, attr, had_instance_attr, previous value)
        self._saved: list[tuple[object, str, bool, object]] = []
        self._saved_globals: dict[str, object] = {}

    # ---------------------------------------------------------- attach

    @property
    def attached(self) -> bool:
        return self._machine is not None

    def attach(self, machine) -> "PhaseProfiler":
        """Wrap the machine's hot-loop entry points with timers."""
        if self._machine is not None:
            raise RuntimeError("profiler is already attached")
        self._machine = machine

        self._wrap(machine, "step", "cycle")
        for attr, phase in STAGE_PHASES:
            self._wrap(machine, attr, phase)
        self._wrap(machine.feed, "next", "subsys.feed")
        self._wrap(machine.widths, "record", "subsys.width_hist")
        self._wrap(machine.fluctuation, "record", "subsys.fluctuation")
        self._wrap(machine.accountant, "record_op", "subsys.power")
        self._wrap(machine.hierarchy, "access_data", "subsys.memory")
        self._wrap(machine.hierarchy, "fetch_instruction", "subsys.memory")

        import repro.core.machine as machine_mod
        for name in _PACKING_GLOBALS:
            original = getattr(machine_mod, name)
            self._saved_globals[name] = original
            setattr(machine_mod, name,
                    self._timed("subsys.packing", original))
        self._wrap_global(machine_mod, "operand_pair_width",
                          "subsys.width_detect")
        return self

    def detach(self) -> None:
        """Undo every wrap; the machine returns to the unprofiled
        code path exactly (instance dicts and module globals restored)."""
        if self._machine is None:
            return
        import repro.core.machine as machine_mod
        for name, original in self._saved_globals.items():
            setattr(machine_mod, name, original)
        self._saved_globals.clear()
        for owner, attr, had, previous in reversed(self._saved):
            if had:
                setattr(owner, attr, previous)
            else:
                delattr(owner, attr)
        self._saved.clear()
        self._machine = None

    def _wrap(self, owner, attr: str, phase: str) -> None:
        had = attr in vars(owner)
        previous = getattr(owner, attr)
        self._saved.append((owner, attr, had, previous))
        setattr(owner, attr, self._timed(phase, previous))

    def _wrap_global(self, module, name: str, phase: str) -> None:
        original = getattr(module, name)
        self._saved_globals[name] = original
        setattr(module, name, self._timed(phase, original))

    def _timed(self, phase: str, fn: Callable) -> Callable:
        seconds = self.seconds
        calls = self.calls

        def wrapper(*args, **kwargs):
            t0 = perf_now()
            try:
                return fn(*args, **kwargs)
            finally:
                dt = perf_now() - t0
                seconds[phase] = seconds.get(phase, 0.0) + dt
                calls[phase] = calls.get(phase, 0) + 1

        wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
        return wrapper

    # ---------------------------------------------------------- report

    def as_dict(self) -> dict:
        """JSON-safe report: per-phase calls/seconds plus the share of
        the inclusive cycle total (the ranking key)."""
        cycle = self.seconds.get("cycle", 0.0)
        return {
            "cycle_seconds": cycle,
            "cycles": self.calls.get("cycle", 0),
            "phases": {
                name: {
                    "calls": self.calls.get(name, 0),
                    "seconds": self.seconds.get(name, 0.0),
                    "share": (self.seconds.get(name, 0.0) / cycle
                              if cycle else 0.0),
                }
                for name in sorted(self.seconds)
            },
        }

    def targets(self) -> list[dict]:
        """Phases ranked by spent seconds, hottest first — the
        prioritized work list for the fast-backend refactor (the
        inclusive ``cycle`` total is excluded from the ranking)."""
        report = self.as_dict()
        ranked = [dict(name=name, **data)
                  for name, data in report["phases"].items()
                  if name != "cycle"]
        ranked.sort(key=lambda r: (-r["seconds"], r["name"]))
        return ranked

    def table(self) -> str:
        """Human-readable ranking (stderr material, never stdout)."""
        report = self.as_dict()
        lines = [f"{'phase':22s} {'calls':>10s} {'seconds':>9s} "
                 f"{'share':>6s}"]
        lines.append("-" * len(lines[0]))
        cycle = report["phases"].get("cycle")
        if cycle is not None:
            lines.append(f"{'cycle (total)':22s} {cycle['calls']:10d} "
                         f"{cycle['seconds']:9.3f} {'100%':>6s}")
        for row in self.targets():
            lines.append(f"{row['name']:22s} {row['calls']:10d} "
                         f"{row['seconds']:9.3f} {row['share']:6.1%}")
        return "\n".join(lines)
