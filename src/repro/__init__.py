"""repro — reproduction of Brooks & Martonosi, "Dynamically Exploiting
Narrow Width Operands to Improve Processor Power and Performance"
(HPCA 1999).

The package provides:

* :mod:`repro.isa` / :mod:`repro.asm` — a 64-bit Alpha-like ISA and a
  structured assembler for writing workloads;
* :mod:`repro.core` — a SimpleScalar-style out-of-order, speculative
  timing simulator (RUU/LSQ, Table 1 baseline);
* :mod:`repro.bitwidth` — the paper's narrow-width operand detection;
* :mod:`repro.power` — operand-based clock gating and the Table 4
  power model (Section 4);
* :mod:`repro.packing` — issue-time operation packing and replay
  packing (Section 5);
* :mod:`repro.workloads` — SPECint95 / MediaBench stand-in kernels;
* :mod:`repro.experiments` — regeneration of every figure and table;
* :mod:`repro.obs` — observability: the pipeline event bus, interval
  sampler, top-down CPI stall attribution, and JSONL run artifacts
  (``repro-obs`` / ``repro-experiments --obs-out``).

Quickstart::

    from repro import Machine, BASELINE
    from repro.workloads import get_workload

    program = get_workload("ijpeg").build()
    machine = Machine(program, BASELINE.with_packing())
    result = machine.run()
    print(result.ipc, result.stats.packed_ops)
"""

from repro.core.config import BASELINE, MachineConfig, PackingConfig
from repro.core.machine import Machine, RunResult
from repro.power.gating import FULL_GATING, OPCODE_ONLY, GatingPolicy

__version__ = "1.0.0"

__all__ = [
    "BASELINE",
    "FULL_GATING",
    "GatingPolicy",
    "Machine",
    "MachineConfig",
    "OPCODE_ONLY",
    "PackingConfig",
    "RunResult",
    "__version__",
]
