"""repro — reproduction of Brooks & Martonosi, "Dynamically Exploiting
Narrow Width Operands to Improve Processor Power and Performance"
(HPCA 1999).

The package provides:

* :mod:`repro.isa` / :mod:`repro.asm` — a 64-bit Alpha-like ISA and a
  structured assembler for writing workloads;
* :mod:`repro.core` — a SimpleScalar-style out-of-order, speculative
  timing simulator (RUU/LSQ, Table 1 baseline);
* :mod:`repro.bitwidth` — the paper's narrow-width operand detection;
* :mod:`repro.power` — operand-based clock gating and the Table 4
  power model (Section 4);
* :mod:`repro.packing` — issue-time operation packing and replay
  packing (Section 5);
* :mod:`repro.workloads` — SPECint95 / MediaBench stand-in kernels;
* :mod:`repro.experiments` — regeneration of every figure and table;
* :mod:`repro.obs` — observability: the pipeline event bus, interval
  sampler, top-down CPI stall attribution, and JSONL run artifacts
  (``repro-obs`` / ``repro-experiments --obs-out``);
* :mod:`repro.exec` — the run engine: memo/disk-cache/fresh result
  tiers, retries, timeouts, the sharded content-addressed store;
* :mod:`repro.service` — the async experiment service: typed sweep
  submissions over HTTP with request coalescing and backpressure
  (``repro-serve`` / ``repro-sweep``).

Quickstart::

    from repro import Machine, BASELINE
    from repro.workloads import get_workload

    program = get_workload("ijpeg").build()
    machine = Machine(program, BASELINE.with_packing())
    result = machine.run()
    print(result.ipc, result.stats.packed_ops)

Engine-tier and service use::

    from repro import Job, RunContext, RunEngine
    result = RunEngine(RunContext(cache_dir="cache")).run(Job("go", BASELINE))

    from repro import JobSpec, ServiceClient, SubmitRequest
    client = ServiceClient("http://127.0.0.1:8731")
    sweep = client.submit(SubmitRequest(jobs=(JobSpec(workload="go"),)))
"""

from repro.core.config import (
    BASELINE,
    MachineConfig,
    PackingConfig,
    named_configs,
)
from repro.core.machine import Machine, RunResult
from repro.exec import Job, RunContext, RunEngine
from repro.experiments.registry import Experiment
from repro.power.gating import FULL_GATING, OPCODE_ONLY, GatingPolicy
from repro.service import (
    Backpressure,
    JobSpec,
    JobStatus,
    ServiceClient,
    ServiceError,
    SubmitRequest,
    SubmitResponse,
    SweepStatus,
)

__version__ = "1.0.0"

__all__ = [
    "BASELINE",
    "Backpressure",
    "Experiment",
    "FULL_GATING",
    "GatingPolicy",
    "Job",
    "JobSpec",
    "JobStatus",
    "Machine",
    "MachineConfig",
    "OPCODE_ONLY",
    "PackingConfig",
    "RunContext",
    "RunEngine",
    "RunResult",
    "ServiceClient",
    "ServiceError",
    "SubmitRequest",
    "SubmitResponse",
    "SweepStatus",
    "named_configs",
    "__version__",
]
