"""Figures 4 and 5 — narrow operations by class at the 16- and 33-bit
cut points.

Paper shape: "for most benchmarks arithmetic and logical operations
dominate the number of narrow-width operations"; multiplies are
infrequent but visible in gsm; moving the cut to 33 bits sweeps in the
address calculations (Figure 5 totals are much higher than Figure 4's).
"""

from conftest import attach_report, regenerate

from repro.experiments import fig4_narrow16_by_class, fig5_narrow33_by_class
from repro.isa.opcodes import OpClass


def test_fig4_narrow16_by_class(benchmark):
    result = regenerate(benchmark, fig4_narrow16_by_class.run)
    attach_report(benchmark, fig4_narrow16_by_class.report(result))

    rows = {row.benchmark: row for row in result.rows}

    # Every benchmark has a nontrivial narrow fraction.
    for row in result.rows:
        assert row.total > 10.0

    # Arithmetic + logic dominate shifts + multiplies for most
    # benchmarks (at least 10 of 14).
    dominated = sum(
        1 for row in result.rows
        if (row.by_class.get(OpClass.INT_ARITH, 0)
            + row.by_class.get(OpClass.INT_LOGIC, 0))
        > (row.by_class.get(OpClass.INT_SHIFT, 0)
           + row.by_class.get(OpClass.INT_MULT, 0)))
    assert dominated >= 10

    # gsm's narrow multiplies are visible (paper: 6% for gsm).
    assert rows["gsm-encode"].by_class.get(OpClass.INT_MULT, 0) > 1.0

    # ijpeg is the narrowest SPEC benchmark; compress the widest.
    assert rows["ijpeg"].total > rows["compress"].total


def test_fig5_narrow33_by_class(benchmark):
    result16 = fig4_narrow16_by_class.run()          # memoized runs
    result33 = regenerate(benchmark, fig5_narrow33_by_class.run)
    attach_report(benchmark, fig5_narrow33_by_class.report(result33))

    rows16 = {row.benchmark: row.total for row in result16.rows}
    for row in result33.rows:
        # Widening the cut can only add operations...
        assert row.total >= rows16[row.benchmark] - 1e-9
    # ...and it adds a lot overall: the 33-bit signal captures the
    # address arithmetic (the reason the paper adds the second cut).
    gain = sum(row.total for row in result33.rows) - sum(rows16.values())
    assert gain / len(result33.rows) > 5.0
