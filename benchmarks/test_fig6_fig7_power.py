"""Figures 6 and 7 — power saved by operand-based clock gating.

Paper shapes: net savings positive everywhere with "the amount of
power used by the zero detection circuitry ... small and nearly
constant"; "In no case does the amount of power used for zero
detection exceed the amount of power saved"; integer-unit power drops
~54% (SPEC) and ~58% (media), with media saving more than SPEC and
ijpeg/go the best SPEC benchmarks.
"""

from conftest import attach_report, regenerate

from repro.experiments import fig6_power_saved, fig7_power_total


def test_fig6_power_saved(benchmark):
    result = regenerate(benchmark, fig6_power_saved.run)
    attach_report(benchmark, fig6_power_saved.report(result))

    overheads = [row.overhead for row in result.rows]
    for row in result.rows:
        # Net savings positive; overhead never exceeds gross savings.
        assert row.net > 0, row.benchmark
        assert row.overhead < row.saved16 + row.saved33, row.benchmark
        # Both cut points contribute somewhere in the suite.
        assert row.saved16 >= 0 and row.saved33 >= 0

    # Overhead is small and nearly constant across benchmarks.
    assert max(overheads) < 5 * min(overheads)
    assert max(overheads) < 60.0     # a few mW/cycle, not device-scale

    rows = {row.benchmark: row for row in result.rows}
    # go is "helped the most by adding the extra signal to detect
    # 33-bit operations": the 33-bit cut contributes a meaningful share
    # for it (our stand-in's board values are narrower than real go's,
    # so the split tilts further toward the 16-bit cut than the paper's).
    assert rows["go"].saved33 > 0.1 * rows["go"].saved16
    # Address-heavy benchmarks show the 33-bit cut prominently.
    assert rows["xlisp"].saved33 > 0.5 * rows["xlisp"].saved16
    assert rows["vortex"].saved33 > 25.0


def test_fig7_power_total(benchmark):
    result = regenerate(benchmark, fig7_power_total.run)
    attach_report(benchmark, fig7_power_total.report(result))

    # Headline numbers: paper reports 54.1% (SPEC) and 57.9% (media).
    assert 40.0 <= result.spec_reduction_pct <= 75.0
    assert 45.0 <= result.media_reduction_pct <= 80.0
    # Media saves more than SPEC.
    assert result.media_reduction_pct > result.spec_reduction_pct

    rows = {row.benchmark: row for row in result.rows}
    for row in result.rows:
        assert 0 < row.reduction_pct < 100, row.benchmark
        assert row.gated_mw < row.baseline_mw, row.benchmark

    # ijpeg and go lead SPEC ("our technique saves the most power for
    # ijpeg and go"); compress trails.
    spec = ["ijpeg", "m88ksim", "go", "xlisp", "compress", "gcc",
            "vortex", "perl"]
    spec_reductions = {name: rows[name].reduction_pct for name in spec}
    top_two = sorted(spec_reductions, key=spec_reductions.get)[-3:]
    assert "ijpeg" in top_two or "go" in top_two
    assert spec_reductions["compress"] == min(spec_reductions.values())
