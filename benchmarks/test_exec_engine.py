"""Run-engine cost model: fresh simulation vs warm-cache rehydration.

The persistent result cache only earns its keep if rehydrating a run
from disk is dramatically cheaper than simulating it.  These benches
time both paths for the same job set and assert the cache's two
contracts: warm hits perform zero fresh simulations, and the
rehydrated counters are bit-exact against the fresh ones.
"""

from __future__ import annotations

from conftest import attach_report, regenerate

from repro.core.config import BASELINE
from repro.exec import Job, RunContext, RunEngine, clear_memo

JOBS = [Job("go", BASELINE, 1), Job("go", BASELINE.with_packing(), 1)]

#: Warm rehydration must beat fresh simulation by at least this factor
#: (measured ~1000x; the bound only guards against the cache silently
#: re-simulating).
MIN_SPEEDUP = 20.0


def _run(cache_dir):
    clear_memo()
    engine = RunEngine(RunContext(cache_dir=cache_dir))
    return engine, engine.run_jobs(JOBS)


def test_fresh_simulation_cost(benchmark, tmp_path):
    engine, results = regenerate(benchmark, _run, tmp_path)
    assert engine.stats.fresh_runs == len(JOBS)
    attach_report(benchmark, engine.stats.summary())
    assert all(r.stats.committed > 0 for r in results.values())


def test_warm_cache_rehydration_cost(benchmark, tmp_path):
    import time

    seed_engine, fresh = _run(tmp_path)  # populate the disk cache
    start = time.perf_counter()
    _run(tmp_path)  # throwaway timing probe for the report
    probe = time.perf_counter() - start

    warm_engine, warm = regenerate(benchmark, _run, tmp_path)
    assert warm_engine.stats.fresh_runs == 0
    assert warm_engine.stats.cache_hits == len(JOBS)
    for job in JOBS:
        assert (warm[job.key].stats.as_dict()
                == fresh[job.key].stats.as_dict())
        assert (warm[job.key].widths.as_dict()
                == fresh[job.key].widths.as_dict())

    fresh_s = benchmark.extra_info["fresh_seconds"] = _fresh_seconds()
    attach_report(benchmark,
                  f"{warm_engine.stats.summary()}; "
                  f"rehydration probe {probe * 1e3:.1f} ms "
                  f"vs fresh {fresh_s:.2f} s")
    assert fresh_s / max(probe, 1e-9) > MIN_SPEEDUP


_FRESH_SECONDS: list[float] = []


def _fresh_seconds() -> float:
    """Time one fresh (uncached) pass over JOBS, memoized per session."""
    if not _FRESH_SECONDS:
        import time

        clear_memo()
        start = time.perf_counter()
        RunEngine(RunContext(use_cache=False)).run_jobs(JOBS)
        _FRESH_SECONDS.append(time.perf_counter() - start)
    return _FRESH_SECONDS[0]
