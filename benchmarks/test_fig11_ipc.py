"""Figure 11 — IPC of baseline vs packing vs 8-issue/8-ALU machines.

Paper shape: packing sits between the baseline and the 8-issue machine,
and several benchmarks (ijpeg, vortex, much of media) "come very close
to achieving the same IPC as the more costly 8-issue/8-ALU
implementation".
"""

from conftest import attach_report, regenerate

from repro.experiments import fig11_ipc


def test_fig11_ipc(benchmark):
    result = regenerate(benchmark, fig11_ipc.run)
    attach_report(benchmark, fig11_ipc.report(result))

    for row in result.rows:
        # Packing never hurts IPC, and the 8-issue machine bounds it
        # (within simulation noise).
        assert row.packed_ipc >= row.baseline_ipc - 0.01, row.benchmark
        assert row.packed_ipc <= row.wide_ipc + 0.05, row.benchmark
        # All IPCs respect the 4-wide fetch/commit ceiling.
        assert 0 < row.baseline_ipc <= 4.0
        assert row.packed_ipc <= 4.0

    # At least a few benchmarks close most of the gap to 8-issue.
    closers = [row for row in result.rows
               if row.wide_ipc - row.baseline_ipc > 0.02
               and row.gap_closed_pct > 60.0]
    assert len(closers) >= 2, [
        (r.benchmark, round(r.gap_closed_pct, 1)) for r in result.rows]
