"""Tables 1, 2/3, and 4 — configuration and power-model content."""

import pytest

from conftest import attach_report, regenerate

from repro.core.config import BASELINE
from repro.experiments import table1_config, table4_devices
from repro.power.devices import Device, device_power
from repro.workloads.registry import (
    MEDIABENCH,
    SPECINT95,
    suite_workloads,
)


def test_table1_config(benchmark):
    text = regenerate(benchmark, table1_config.report)
    attach_report(benchmark, text)
    # Table 1's load-bearing parameters.
    assert BASELINE.ruu_size == 80
    assert BASELINE.lsq_size == 40
    assert BASELINE.fetch_queue_size == 8
    assert (BASELINE.fetch_width == BASELINE.decode_width
            == BASELINE.issue_width == BASELINE.commit_width == 4)
    assert BASELINE.int_alus == 4 and BASELINE.int_mult_div == 1
    assert BASELINE.mispredict_penalty == 2
    h = BASELINE.hierarchy
    assert h.l1d_size == h.l1i_size == 64 * 1024
    assert h.l2_size == 8 * 1024 * 1024
    assert h.l2_latency == 12 and h.memory_latency == 100
    assert h.tlb_entries == 128 and h.tlb_miss_latency == 30


def test_tables23_benchmarks(benchmark):
    def collect():
        return (sorted(w.name for w in suite_workloads(SPECINT95)),
                sorted(w.name for w in suite_workloads(MEDIABENCH)))

    spec, media = regenerate(benchmark, collect)
    attach_report(benchmark,
                  "Table 2 (SPECint95): " + ", ".join(spec) + "\n"
                  "Table 3 (MediaBench): " + ", ".join(media))
    assert spec == ["compress", "gcc", "go", "ijpeg", "m88ksim", "perl",
                    "vortex", "xlisp"]
    assert media == ["g721-decode", "g721-encode", "gsm-decode",
                     "gsm-encode", "mpeg2-decode", "mpeg2-encode"]


def test_table4_devices(benchmark):
    text = regenerate(benchmark, table4_devices.report)
    attach_report(benchmark, text)
    for device, columns in table4_devices.PAPER_VALUES.items():
        for width, paper in zip((32, 48, 64), columns):
            assert device_power(device, width) == pytest.approx(
                paper, rel=0.02)
    # Relative magnitudes the analysis leans on: the multiplier is 10x
    # the adder; logic and shifts are tiny.
    assert device_power(Device.MULTIPLIER, 64) == pytest.approx(
        10 * device_power(Device.ADDER, 64))
    assert device_power(Device.LOGIC, 64) < 0.1 * device_power(
        Device.ADDER, 64)
