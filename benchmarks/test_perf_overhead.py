"""Perf-layer overhead guard: disabled tracing and profiling are free.

The PR that introduced :mod:`repro.perf` touched the engine and grew a
profiler that wraps the machine's hot loop — this module holds the
line that **not using** either costs nothing:

* **bit-exactness** — the seed's ``go`` counters are reproduced exactly
  by an unprofiled machine (the cycle loop is byte-identical: the
  profiler wraps instance attributes only on attach, and the machine
  module's hot path gained no new code);
* **attach/detach leaves no residue** — a machine profiled once and
  detached re-runs at unprofiled speed and with unprofiled counters;
* **untraced engine timing** — span recording is guarded by
  ``if tracer is not None``; two interleaved series with and without a
  ``tracer=None`` engine must agree within the measurement-noise
  budget, and the per-cycle loop itself within the 1% acceptance
  budget (measured on the cycle loop alone, best-of-N interleaved —
  the two series run *identical* code, so the assertion bounds noise
  plus any accidental always-on work).
"""

from __future__ import annotations

import time

from repro.core.config import BASELINE
from repro.core.machine import Machine
from repro.workloads.registry import get_workload, resolve_warmup

#: The seed's go-workload counters (see benchmarks/test_obs_overhead.py).
SEED_GO_COMMITTED = 10_198
SEED_GO_CYCLES = 9_828

#: Acceptance budget for the disabled cycle loop: the profiler-off and
#: tracer-off paths are byte-identical to the seed's, so the measured
#: delta is pure noise — best-of-N interleaved keeps it under 1%.
CYCLE_LOOP_BUDGET = 0.01

#: Budget for single-shot comparisons that include machine build +
#: warmup (noisier than the pinned cycle loop).
WALL_BUDGET = 0.10

#: Budget for the attach/detach residue check.  Detach restores every
#: instance attribute and module global *exactly* (state-diff empty,
#: counters bit-exact — see the seed-counter tests above), but CPython
#: 3.11 materializes an object's inline/split-keys ``__dict__`` the
#: moment new attribute names are added, and deletion never undoes
#: that — so a once-profiled machine's ``self.x`` lookups stay ~10-15%
#: slower than a never-profiled one's.  A wrapper accidentally left
#: installed costs ~+50% (measured), so 25% still separates "CPython
#: dict layout" from "detach forgot something".
DETACH_BUDGET = 0.25

#: Adaptive sampling bounds for the wall-clock comparisons.  On a
#: loaded single-CPU host, a fixed sample count is flaky: one noise
#: spike in the wrong series inflates the ratio past any tight budget.
#: Best-of-N is monotone decreasing in N, so interleaved series over
#: *identical* code must converge with more samples — while a genuine
#: regression stays however many samples are added.  Start small, add
#: rounds only while the budget is exceeded.
INITIAL_PAIRS = 6
PAIRS_PER_ROUND = 4
MAX_PAIRS = 26


def _build_warm_go() -> Machine:
    workload = get_workload("go")
    machine = Machine(workload.build(1), BASELINE)
    machine.fast_forward(resolve_warmup(workload, 1))
    return machine


def _timed_window(machine: Machine) -> tuple[float, object]:
    start = time.perf_counter()
    result = machine.run(max_insts=get_workload("go").window)
    return time.perf_counter() - start, result


def _converged_ratio(sample_a, sample_b, budget: float,
                     one_sided: bool = False) -> float:
    """Interleave two timing callables until their best-of-N floors
    agree within ``budget`` (or the sample cap is hit) and return the
    final relative difference.  ``one_sided`` treats series B faster
    than series A as zero overhead.  Robust to noise spikes, blind to
    nothing: a real slowdown in one series keeps the ratio above the
    budget at any N."""
    series_a: list[float] = []
    series_b: list[float] = []
    pairs = INITIAL_PAIRS
    while True:
        while len(series_a) < pairs:
            series_a.append(sample_a())
            series_b.append(sample_b())
        best_a, best_b = min(series_a), min(series_b)
        if one_sided:
            ratio = max(0.0, (best_b - best_a) / best_a)
        else:
            ratio = abs(best_a - best_b) / min(best_a, best_b)
        if ratio < budget or pairs >= MAX_PAIRS:
            return ratio
        pairs += PAIRS_PER_ROUND


def test_unprofiled_counters_match_seed_exactly():
    _, result = _timed_window(_build_warm_go())
    assert result.stats.committed == SEED_GO_COMMITTED
    assert result.stats.cycles == SEED_GO_CYCLES


def test_detached_machine_matches_seed_exactly():
    machine = _build_warm_go()
    profiler = machine.enable_profiling()
    profiler.detach()
    _, result = _timed_window(machine)
    assert result.stats.committed == SEED_GO_COMMITTED
    assert result.stats.cycles == SEED_GO_CYCLES
    assert "step" not in vars(machine)


def test_disabled_profiling_cycle_loop_within_one_percent():
    """The acceptance budget: two interleaved series of never-profiled
    cycle loops (identical code by construction) agree within 1% —
    bounding noise and proving no always-on profiler work leaked into
    the loop."""
    _timed_window(_build_warm_go())      # cold-code warmup, discarded
    ratio = _converged_ratio(
        lambda: _timed_window(_build_warm_go())[0],
        lambda: _timed_window(_build_warm_go())[0],
        CYCLE_LOOP_BUDGET)
    assert ratio < CYCLE_LOOP_BUDGET, (
        f"disabled-path cycle loop unstable/regressed: {ratio:.1%}")


def test_attach_detach_leaves_no_timing_residue():
    """A machine profiled once and detached runs the window well under
    the fully-attached cost — i.e. no wrapper was left installed.  The
    budget is DETACH_BUDGET, not WALL_BUDGET: see its comment for the
    CPython dict-materialization floor that makes exact parity
    unreachable."""
    def detached_sample() -> float:
        machine = _build_warm_go()
        profiler = machine.enable_profiling()
        profiler.detach()
        return _timed_window(machine)[0]

    overhead = _converged_ratio(
        lambda: _timed_window(_build_warm_go())[0],
        detached_sample,
        DETACH_BUDGET, one_sided=True)
    assert overhead < DETACH_BUDGET, (
        f"detach left a wrapper installed: {overhead:+.1%} over a "
        f"never-attached machine")


def test_untraced_engine_adds_no_measurable_work(tmp_path):
    """Serial engine with tracer=None versus the engine before tracing
    existed: same code path (every span site is `if tracer is not
    None`-guarded), so warm-cache recalls must stay fast and timing-
    stable within the wall budget."""
    from repro.core.config import BASELINE as CONFIG
    from repro.exec.context import RunContext
    from repro.exec.engine import RunEngine, clear_memo
    from repro.exec.jobs import Job

    job = Job(workload="g721-encode", config=CONFIG, scale=1)
    ctx = RunContext(cache_dir=tmp_path / "c", jobs=1)
    clear_memo()
    RunEngine(ctx).run_jobs([job])       # populate the disk tier

    def recall_sample() -> float:
        clear_memo()
        engine = RunEngine(ctx)          # tracer=None both times
        start = time.perf_counter()
        engine.run_jobs([job])
        elapsed = time.perf_counter() - start
        assert engine.stats.fresh_runs == 0
        return elapsed

    ratio = _converged_ratio(recall_sample, recall_sample, WALL_BUDGET)
    assert ratio < WALL_BUDGET, (
        f"untraced warm recall unstable: {ratio:.1%}")
