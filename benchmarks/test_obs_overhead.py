"""Observability overhead guard.

The event bus must be free when nobody listens: every emission site in
the machine is guarded by ``if self._subscribers:`` (and the per-cycle
probe hook by ``if self._probes:``), so a machine with zero subscribers
differs from the pre-observability seed only by those truthiness
checks.

This module enforces the contract against the seed:

* **IPC changes by exactly 0** — the seed's ``go`` run counters
  (committed / cycles, recorded below at the revision that introduced
  the bus) must be reproduced bit-exactly by a zero-subscriber machine,
  and attaching the full obs stack must not move them either;
* **wall-time stays within 10%** — interleaved best-of-N timings of two
  identical zero-subscriber runs must agree within the 10% budget the
  seed comparison allows, bounding both measurement noise and any
  accidental always-on work sneaking into the hot loop.
"""

from __future__ import annotations

import time

from repro.core.config import BASELINE
from repro.core.machine import Machine
from repro.obs.events import EventRecorder
from repro.obs.sampler import IntervalSampler
from repro.workloads.registry import get_workload, resolve_warmup

#: The seed's go-workload run under the paper's methodology (warmup +
#: 30k-instruction window, Table 1 baseline config).  Recorded at the
#: revision that introduced the event bus; the zero-subscriber machine
#: must reproduce these exactly.
SEED_GO_COMMITTED = 10_198
SEED_GO_CYCLES = 9_828

#: Wall-time budget versus seed (and between interleaved runs).
OVERHEAD_BUDGET = 0.10

REPEATS = 5


def _timed_go_run(attach_obs: bool = False) -> tuple[float, object]:
    workload = get_workload("go")
    machine = Machine(workload.build(1), BASELINE)
    if attach_obs:
        machine.subscribe(EventRecorder(limit=1))
        machine.add_probe(IntervalSampler(window=1000))
        machine.enable_stall_attribution()
    machine.fast_forward(resolve_warmup(workload, 1))
    start = time.perf_counter()
    result = machine.run(max_insts=workload.window)
    return time.perf_counter() - start, result


def test_zero_subscriber_ipc_matches_seed_exactly():
    _, result = _timed_go_run()
    assert result.stats.committed == SEED_GO_COMMITTED
    assert result.stats.cycles == SEED_GO_CYCLES


def test_full_obs_stack_does_not_perturb_timing():
    _, plain = _timed_go_run()
    _, observed = _timed_go_run(attach_obs=True)
    assert observed.stats.committed == plain.stats.committed
    assert observed.stats.cycles == plain.stats.cycles
    assert observed.stats.issued == plain.stats.issued


def test_zero_subscriber_walltime_within_budget():
    # Interleave two series of identical zero-subscriber runs and keep
    # each series' best time: with the guarded bus being the only delta
    # to the seed's hot loop, the two series must agree within the 10%
    # seed budget (best-of-N absorbs scheduler noise).
    series_a: list[float] = []
    series_b: list[float] = []
    for _ in range(REPEATS):
        series_a.append(_timed_go_run()[0])
        series_b.append(_timed_go_run()[0])
    best_a, best_b = min(series_a), min(series_b)
    ratio = abs(best_a - best_b) / min(best_a, best_b)
    assert ratio < OVERHEAD_BUDGET, (
        f"zero-subscriber wall-time unstable/regressed: "
        f"{best_a:.3f}s vs {best_b:.3f}s ({ratio:.1%})")
