"""Section 4.2 — gated operations fed directly by loads.

Paper shape: "13.1% of power saving instructions have one or more
operands that come directly from a load instruction ... The percentages
for the media benchmarks are much lower at 1.5%."  Omitting the
cache-side zero detect therefore costs SPEC noticeably more than media.
"""

from conftest import attach_report, regenerate

from repro.experiments import load_zero_detect


def test_load_zero_detect(benchmark):
    result = regenerate(benchmark, load_zero_detect.run)
    attach_report(benchmark, load_zero_detect.report(result))

    # SPEC's gated ops consume load results far more often than media's
    # (paper: 13.1% vs 1.5%).
    assert result.spec_pct > 5.0
    assert result.media_pct < 5.0
    assert result.spec_pct > 3 * result.media_pct

    # Omitting load zero-detect never *helps*, and the loss shows up
    # where load-fed gating is common.
    for row in result.rows:
        assert (row.reduction_without_pct
                <= row.reduction_with_pct + 1e-9), row.benchmark
