"""Ablations of the design choices DESIGN.md calls out.

* the 33-bit cut point (Section 4.3's addition over plain 16-bit gating)
* cache-side zero detect on loads (Section 4.2's discussion)
* operand-based vs opcode-only gating (the prior-work baseline)
* pack width: 2 vs 4 subwords per ALU
"""

from conftest import attach_report, regenerate

from repro.core.config import BASELINE
from repro.experiments.base import all_names, format_table, mean, run_workload
from repro.power.gating import GatingPolicy
from repro.stats.counters import speedup_pct


def _mean_reduction(config):
    return mean([run_workload(name, config).power.reduction_pct
                 for name in all_names()])


def test_ablation_gate33(benchmark):
    """Adding the 33-bit cut must increase savings beyond 16-bit-only
    gating (it is why the paper adds the second control signal)."""

    def run_ablation():
        full = _mean_reduction(BASELINE)
        gate16_only = _mean_reduction(
            BASELINE.with_gating(GatingPolicy(gate33=False)))
        return full, gate16_only

    full, gate16_only = regenerate(benchmark, run_ablation)
    attach_report(benchmark, format_table(
        ["policy", "mean reduction %"],
        [["16 + 33 bit cuts", full], ["16-bit cut only", gate16_only]]))
    assert full > gate16_only + 2.0


def test_ablation_load_detect(benchmark):
    """Omitting zero-detect on loads costs SPEC more than media
    (Section 4.2: 13.1% vs 1.5% of gated ops are load-fed)."""

    def run_ablation():
        no_loads = BASELINE.with_gating(GatingPolicy(detect_loads=False))
        spec = ("ijpeg", "m88ksim", "go", "xlisp", "compress", "gcc",
                "vortex", "perl")
        media = ("gsm-encode", "gsm-decode", "mpeg2-encode",
                 "mpeg2-decode", "g721-encode", "g721-decode")

        def loss(names):
            return mean([
                run_workload(n, BASELINE).power.reduction_pct
                - run_workload(n, no_loads).power.reduction_pct
                for n in names])

        return loss(spec), loss(media)

    spec_loss, media_loss = regenerate(benchmark, run_ablation)
    attach_report(benchmark, format_table(
        ["suite", "reduction lost w/o load detect (pp)"],
        [["SPECint95", spec_loss], ["MediaBench", media_loss]]))
    assert spec_loss >= 0 and media_loss >= 0
    assert spec_loss > media_loss


def test_ablation_opcode_gating(benchmark):
    """The prior-work opcode-only baseline saves nothing on top of the
    Figure 7 baseline (which already assumes it); operand-based gating
    is where the 50%+ reduction comes from."""

    def run_ablation():
        opcode_only = BASELINE.with_gating(GatingPolicy(
            gate16=False, gate33=False, operand_based=False))
        return (_mean_reduction(BASELINE),
                _mean_reduction(opcode_only))

    operand_based, opcode_based = regenerate(benchmark, run_ablation)
    attach_report(benchmark, format_table(
        ["policy", "mean reduction %"],
        [["operand-based (paper)", operand_based],
         ["opcode-only (prior work)", opcode_based]]))
    assert opcode_based == 0.0
    assert operand_based > 40.0


def test_ablation_pack_width(benchmark):
    """4 subword lanes per ALU capture at least as much speedup as 2
    (HP MAX packs four 16-bit adds per 64-bit ALU)."""

    def run_ablation():
        def mean_speedup(subwords):
            speedups = []
            for name in all_names():
                base = run_workload(name, BASELINE)
                packed = run_workload(
                    name, BASELINE.with_packing(max_subwords=subwords))
                speedups.append(speedup_pct(base.stats.cycles,
                                            packed.stats.cycles))
            return mean(speedups)

        return mean_speedup(4), mean_speedup(2)

    lanes4, lanes2 = regenerate(benchmark, run_ablation)
    attach_report(benchmark, format_table(
        ["subword lanes", "mean speedup %"],
        [["4 (MAX-style)", lanes4], ["2", lanes2]]))
    assert lanes2 >= -0.2
    assert lanes4 >= lanes2 - 0.2


def test_ablation_same_class_packing(benchmark):
    """Relaxing 'same operation' to 'same class' can only add packs."""

    def run_ablation():
        strict_total = relaxed_total = 0
        for name in all_names():
            strict = run_workload(name, BASELINE.with_packing())
            relaxed = run_workload(
                name, BASELINE.with_packing(same_opcode=False))
            strict_total += strict.stats.packed_ops
            relaxed_total += relaxed.stats.packed_ops
        return strict_total, relaxed_total

    strict_total, relaxed_total = regenerate(benchmark, run_ablation)
    attach_report(benchmark, format_table(
        ["rule", "total packed ops"],
        [["same opcode (paper)", strict_total],
         ["same class (relaxed)", relaxed_total]]))
    assert relaxed_total >= strict_total
