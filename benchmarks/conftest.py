"""Shared helpers for the figure/table regeneration benchmarks.

Each benchmark regenerates one paper table or figure (DESIGN.md's
experiment index).  ``pytest-benchmark`` times the regeneration; the
assertions check the *shape* of the results against the paper (who
wins, by roughly what factor, where crossovers fall).  Simulation
results are memoized process-wide, so benches that share runs (e.g.
Figures 6 and 7) pay for them once.
"""

from __future__ import annotations


def regenerate(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def attach_report(benchmark, text: str) -> None:
    """Print the regenerated rows and keep them in the benchmark JSON."""
    print()
    print(text)
    benchmark.extra_info["report"] = text
