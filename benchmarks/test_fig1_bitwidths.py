"""Figure 1 — cumulative bitwidth distribution for SPECint95.

Paper shape: "Roughly 50% of the instructions had both operands less
than or equal to 16-bits" and "there is a large jump at 33 bits [from]
heap and stack references".
"""

from conftest import attach_report, regenerate

from repro.experiments import fig1_cumulative_widths


def test_fig1_cumulative_widths(benchmark):
    result = regenerate(benchmark, fig1_cumulative_widths.run)
    attach_report(benchmark, fig1_cumulative_widths.report(result))

    # ~half of SPEC integer operations are narrow at 16 bits.
    assert 35.0 <= result.aggregate_at(16) <= 70.0

    # The signature jump at 33 bits (address calculations).
    jump = result.aggregate_at(33) - result.aggregate_at(31)
    assert jump > 10.0

    # By 33 bits the vast majority of operations are covered...
    assert result.aggregate_at(33) > 80.0
    # ...and the curve is monotone, reaching 100% at 64 bits.
    for curve in result.curves.values():
        assert all(b >= a for a, b in zip(curve, curve[1:]))
        assert curve[63] == 100.0

    # compress is the widest SPEC benchmark, ijpeg among the narrowest
    # (Figure 4's ordering, visible in Figure 1's curves).
    assert result.at("compress", 16) < result.at("ijpeg", 16)
