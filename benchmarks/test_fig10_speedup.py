"""Figure 10 and Sections 5.3/5.4 — operation-packing speedups.

Paper shapes at 4-wide decode: positive average speedups under both
predictors (SPEC 7.1%/4.3%, media 7.6%/8.0%), media ahead of SPEC with
the realistic predictor; replay packing adds more (Section 5.3); 8-wide
decode increases speedups further (Section 5.4: SPEC 9.9%/6.2%, media
10.3%/10.4%).
"""

from conftest import attach_report, regenerate

from repro.experiments import fig10_packing_speedup


def test_fig10_packing_speedup_4wide(benchmark):
    result = regenerate(benchmark, fig10_packing_speedup.run)
    attach_report(benchmark, fig10_packing_speedup.report(result))

    # Packing never slows a benchmark down meaningfully.
    for row in result.rows:
        assert row.perfect_pct > -0.5, row.benchmark
        assert row.realistic_pct > -0.5, row.benchmark

    # Positive suite averages under both predictors.
    assert result.spec_perfect > 0.5
    assert result.spec_realistic > 0.5
    assert result.media_perfect > 0.5
    assert result.media_realistic > 0.5


def test_fig10_replay_packing(benchmark):
    plain = fig10_packing_speedup.run()                    # memoized
    replay = regenerate(benchmark, fig10_packing_speedup.run,
                        replay=True)
    attach_report(benchmark, fig10_packing_speedup.report(replay))

    # Section 5.3: relaxing the both-narrow rule adds opportunities —
    # replay packing's suite averages meet or beat plain packing.
    assert (replay.spec_realistic + replay.media_realistic
            >= plain.spec_realistic + plain.media_realistic - 0.2)


def test_fig10_8wide_decode(benchmark):
    narrow = fig10_packing_speedup.run()                   # memoized
    wide = regenerate(benchmark, fig10_packing_speedup.run,
                      decode_width=8)
    attach_report(benchmark, fig10_packing_speedup.report(wide))

    # Section 5.4: "the optimization performs better with increased
    # decode bandwidth" — on average across the suites.
    assert (wide.spec_realistic + wide.media_realistic
            >= narrow.spec_realistic + narrow.media_realistic - 0.2)
    assert wide.media_realistic > 0.5
