"""Figure 2 — per-PC operand-width fluctuation, perfect vs realistic
branch prediction.

Paper shape: "With perfect branch prediction, the instruction operand
sizes are far more predictable than with realistic branch prediction"
— wrong-path execution visits uncommon paths whose operand widths
differ.
"""

from conftest import attach_report, regenerate

from repro.experiments import fig2_width_fluctuation


def test_fig2_width_fluctuation(benchmark):
    result = regenerate(benchmark, fig2_width_fluctuation.run)
    attach_report(benchmark, fig2_width_fluctuation.report(result))

    # Realistic prediction adds fluctuation (wrong-path executions).
    # Per benchmark this holds up to sampling noise (the two runs cut
    # their measurement windows at slightly different points); the
    # suite mean must strictly agree with the paper's direction.
    for row in result.rows:
        assert row.realistic_pct >= row.perfect_pct - 1.0, row.benchmark
    assert result.mean_realistic >= result.mean_perfect
    # At least some benchmarks show the wrong-path effect clearly.
    amplified = [row for row in result.rows
                 if row.realistic_pct > row.perfect_pct + 1.0]
    assert len(amplified) >= 1

    # A meaningful fraction of PCs fluctuates: static analysis cannot
    # pin operand widths down (the motivation for a dynamic scheme).
    assert result.mean_realistic > 1.0
